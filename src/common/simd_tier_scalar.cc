/**
 * @file
 * The scalar kernel tier — the portable baseline every other tier must
 * match bit for bit, and the fallback when the CPU (or architecture)
 * has nothing wider. The lock-step tree walk here is the engine PR 4
 * measured at ~5x over the per-row node walk: fully unrolled
 * power-of-two row blocks whose interleaved dependent load chains the
 * CPU overlaps. This TU is compiled with portable optimization flags
 * only (-O3 -funroll-loops, no -march), so one binary runs anywhere.
 */

#include "common/simd.h"

#include <algorithm>
#include <cmath>

namespace mapp::simd {

namespace {

/**
 * Advance @p RowCount rows through one tree for a fixed @p steps
 * comparisons, leaving each row's final node index in the local state
 * array. Rows that reach a leaf early self-loop on it (the sentinel
 * encoding), so there is no per-step termination branch and the
 * RowCount dependent load chains proceed in parallel.
 *
 * The pointers are `__restrict__` on purpose: `out` shares the double
 * type with the threshold array, and without the no-alias promise the
 * compiler must reload node data after every store — which serializes
 * the row chains and erases the whole point of the interleaving. The
 * walk advances a LOCAL state array `c` with constant indices
 * (RowCount is a template parameter and the loops unroll completely),
 * so the per-step state update is register-promotable and costs no
 * load/store traffic on a kernel that is otherwise load-port bound.
 *
 * Each level costs four loads per row — feature id, the row's feature
 * value, threshold, and the taken child `kids[2n + !(x <= t)]`. The
 * comparison materializes as a SETcc folded into the child load's
 * address, never a conditional branch (data-dependent splits
 * mispredict ~50% and a mispredict per level would cost more than the
 * whole level). The indexed child load is deliberate: it beats every
 * register-select alternative on the real forests this project serves
 * (see the PackedNode note in common/simd.h) because a load is one
 * cheap load-port uop while a variable shift or cmov lengthens each
 * level's dependency chain. The !(x <= t) form keeps NaN semantics
 * identical to the oracle walk (NaN fails <=, so it routes right in
 * both engines).
 */
template <std::size_t RowCount>
__attribute__((noinline)) void
walkBlock(const std::int32_t* __restrict__ feature,
          const double* __restrict__ threshold,
          const std::int32_t* __restrict__ kids, std::int32_t root,
          int steps, const double* __restrict__ rows,
          std::size_t n_features, double* __restrict__ out,
          bool accumulate)
{
    std::int32_t c[RowCount];
    for (std::size_t i = 0; i < RowCount; ++i)
        c[i] = root;
    for (int s = 0; s < steps;) {
        const int stop = std::min(steps, s + kWalkStepsPerProbe - 1);
        for (; s < stop; ++s) {
            for (std::size_t i = 0; i < RowCount; ++i) {
                const auto n = static_cast<std::size_t>(c[i]);
                const double x =
                    rows[i * n_features +
                         static_cast<std::size_t>(feature[n])];
                c[i] = kids[2 * n + static_cast<std::size_t>(
                                        !(x <= threshold[n]))];
            }
        }
        if (s >= steps)
            break;
        // Probe step: same walk, but fold "did any row move?" into
        // the step itself (a leaf self-loops, so next == c iff the
        // row is done) — the check reuses values already in flight
        // instead of a separate pass over the block.
        bool done = true;
        for (std::size_t i = 0; i < RowCount; ++i) {
            const auto n = static_cast<std::size_t>(c[i]);
            const double x =
                rows[i * n_features +
                     static_cast<std::size_t>(feature[n])];
            const std::int32_t next =
                kids[2 * n +
                     static_cast<std::size_t>(!(x <= threshold[n]))];
            done &= next == c[i];
            c[i] = next;
        }
        ++s;
        if (done)
            break;  // self-loop sentinel: extra steps are no-ops
    }
    // Fused output: the final leaf values leave the walk directly —
    // no row-state array crosses the call boundary, so the caller
    // never re-loads what the walk just stored.
    if (accumulate)
        for (std::size_t i = 0; i < RowCount; ++i)
            out[i] += threshold[static_cast<std::size_t>(c[i])];
    else
        for (std::size_t i = 0; i < RowCount; ++i)
            out[i] = threshold[static_cast<std::size_t>(c[i])];
}

/** Runtime-count tail variant for the final few rows. */
__attribute__((noinline)) void
walkBlockTail(const std::int32_t* __restrict__ feature,
              const double* __restrict__ threshold,
              const std::int32_t* __restrict__ kids, std::int32_t root,
              int steps, const double* __restrict__ rows,
              std::size_t n_features, std::size_t row_count,
              double* __restrict__ out, bool accumulate)
{
    std::int32_t cur[kWalkBlockRows];
    for (std::size_t i = 0; i < row_count; ++i)
        cur[i] = root;
    for (int s = 0; s < steps;) {
        const int stop = std::min(steps, s + kWalkStepsPerProbe - 1);
        for (; s < stop; ++s) {
            for (std::size_t i = 0; i < row_count; ++i) {
                const auto n = static_cast<std::size_t>(cur[i]);
                const double x =
                    rows[i * n_features +
                         static_cast<std::size_t>(feature[n])];
                cur[i] = kids[2 * n + static_cast<std::size_t>(
                                          !(x <= threshold[n]))];
            }
        }
        if (s >= steps)
            break;
        bool done = true;
        for (std::size_t i = 0; i < row_count; ++i) {
            const auto n = static_cast<std::size_t>(cur[i]);
            const double x =
                rows[i * n_features +
                     static_cast<std::size_t>(feature[n])];
            const std::int32_t next =
                kids[2 * n +
                     static_cast<std::size_t>(!(x <= threshold[n]))];
            done &= next == cur[i];
            cur[i] = next;
        }
        ++s;
        if (done)
            break;  // self-loop sentinel: extra steps are no-ops
    }
    if (accumulate)
        for (std::size_t i = 0; i < row_count; ++i)
            out[i] += threshold[static_cast<std::size_t>(cur[i])];
    else
        for (std::size_t i = 0; i < row_count; ++i)
            out[i] = threshold[static_cast<std::size_t>(cur[i])];
}

void
normalizeRowsScalar(double* row_major, std::size_t n_rows,
                    const double* divisors, std::size_t n_features)
{
    for (std::size_t r = 0; r < n_rows; ++r) {
        double* row = row_major + r * n_features;
        for (std::size_t f = 0; f < n_features; ++f)
            row[f] /= divisors[f];
    }
}

void
scaleValuesScalar(double* values, std::size_t n, double factor)
{
    for (std::size_t i = 0; i < n; ++i)
        values[i] *= factor;
}

double
sumSquaredDiffScalar(const double* a, const double* b, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double
sumSquaredDevScalar(const double* x, std::size_t n, double center)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = x[i] - center;
        acc += d * d;
    }
    return acc;
}

double
sumAbsRelErrPctScalar(const double* truth, const double* pred,
                      std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double at = std::abs(truth[i]);
        const double denom = at > 1e-300 ? at : 1e-300;
        acc += std::abs(truth[i] - pred[i]) / denom * 100.0;
    }
    return acc;
}

const Kernels kScalarTable{
    Tier::Scalar,       "scalar",
    &detail::walkScalar, &normalizeRowsScalar,
    &scaleValuesScalar,  &sumSquaredDiffScalar,
    &sumSquaredDevScalar, &sumAbsRelErrPctScalar,
};

}  // namespace

namespace detail {

/**
 * Walk @p row_count (<= kWalkBlockRows) rows through one tree,
 * cascading down power-of-two instantiations so nearly every row runs
 * fully unrolled codegen; only a <4-row remainder takes the rolled
 * tail. A partial final block would otherwise put up to 31 rows — a
 * third of a campaign-sized batch — through the slow path.
 */
void
walkScalar(const TreeNodes& nodes, std::int32_t root, int steps,
           const double* rows, std::size_t n_features,
           std::size_t row_count, double* out, bool accumulate)
{
    const std::int32_t* feature = nodes.feature;
    const double* threshold = nodes.threshold;
    const std::int32_t* kids = nodes.kids;
    std::size_t done = 0;
    while (row_count - done >= 32) {
        walkBlock<32>(feature, threshold, kids, root, steps,
                      rows + done * n_features, n_features, out + done,
                      accumulate);
        done += 32;
    }
    if (row_count - done >= 16) {
        walkBlock<16>(feature, threshold, kids, root, steps,
                      rows + done * n_features, n_features, out + done,
                      accumulate);
        done += 16;
    }
    if (row_count - done >= 8) {
        walkBlock<8>(feature, threshold, kids, root, steps,
                     rows + done * n_features, n_features, out + done,
                     accumulate);
        done += 8;
    }
    if (row_count - done >= 4) {
        walkBlock<4>(feature, threshold, kids, root, steps,
                     rows + done * n_features, n_features, out + done,
                     accumulate);
        done += 4;
    }
    if (row_count > done)
        walkBlockTail(feature, threshold, kids, root, steps,
                      rows + done * n_features, n_features,
                      row_count - done, out + done, accumulate);
}

const Kernels*
scalarKernels()
{
    return &kScalarTable;
}

}  // namespace detail

}  // namespace mapp::simd
