#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/simd.h"

namespace mapp::stats {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    return sum(xs) / static_cast<double>(xs.size());
}

double
variance(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    const double acc =
        simd::kernels().sumSquaredDev(xs.data(), xs.size(), m);
    return acc / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    return std::sqrt(variance(xs));
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
minimum(std::span<const double> xs)
{
    double best = std::numeric_limits<double>::infinity();
    for (double x : xs)
        best = std::min(best, x);
    return best;
}

double
maximum(std::span<const double> xs)
{
    double best = -std::numeric_limits<double>::infinity();
    for (double x : xs)
        best = std::max(best, x);
    return best;
}

double
sum(std::span<const double> xs)
{
    return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double
median(std::span<const double> xs)
{
    return percentile(xs, 50.0);
}

double
percentile(std::span<const double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    // Clamp before the size_t cast below: p > 100 would index
    // sorted[size] and a negative p would wrap to a huge index.
    if (!(p >= 0.0))
        p = 0.0;
    else if (p > 100.0)
        p = 100.0;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double pos =
        (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - std::floor(pos);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    const std::size_t n = std::min(xs.size(), ys.size());
    if (n < 2)
        return 0.0;
    const double mx = mean(xs.subspan(0, n));
    const double my = mean(ys.subspan(0, n));
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
ranks(std::span<const double> xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

    std::vector<double> out(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]])
            ++j;
        // Average rank for the tie group [i, j].
        const double avg = (static_cast<double>(i) +
                            static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            out[order[k]] = avg;
        i = j + 1;
    }
    return out;
}

double
spearman(std::span<const double> xs, std::span<const double> ys)
{
    const std::size_t n = std::min(xs.size(), ys.size());
    if (n < 2)
        return 0.0;
    const auto rx = ranks(xs.subspan(0, n));
    const auto ry = ranks(ys.subspan(0, n));
    return pearson(rx, ry);
}

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

}  // namespace mapp::stats
