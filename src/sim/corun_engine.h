/**
 * @file
 * The shared allocation-free incremental co-run engine.
 *
 * Both simulators (gpusim's MPS clients, cpusim's multicore apps) run
 * the same discrete-event loop: advance the clock to the earliest phase
 * completion, re-divide spatial resources whenever the resident set
 * changes, and negotiate memory bandwidth by max-min fairness over the
 * residents' instantaneous demands. runCorun() implements that loop
 * once, parameterized over a Model policy that supplies the machine
 * specifics (partition shape, the phase rate model, demand, capacity,
 * queueing, and trace formatting).
 *
 * Contract: bit-identical results to the original per-simulator loops.
 * The engine preserves the exact event ordering and floating-point
 * sequence of the seed implementation — the active set is kept in
 * ascending client order (ordered compaction, never swap-remove,
 * because the max-min waterfill and the total-demand sum are
 * FP-order-sensitive), and the per-event arithmetic is the seed's
 * expressions verbatim. What changed is *when* things are computed:
 *
 *  - the expensive phase-rate model runs once per phase entry and once
 *    per residency change, not twice per event per client;
 *  - partition geometry is computed on residency changes only;
 *  - all per-event state lives in a thread-local scratch arena that is
 *    reused across bags, so steady-state simulation performs no heap
 *    allocation.
 *
 * The bit-identity is pinned by the golden fuzz suite in
 * tests/test_sim_engine.cc, which compares against a literal
 * transcription of the seed loop.
 *
 * The Model policy must provide:
 *
 *   static constexpr const char* kName;        // "gpusim" / "cpusim"
 *   static constexpr const char* kClientWord;  // "client" / "app"
 *   using Rate = ...;       // partition-invariant phase timing terms
 *   struct Partition {...}; // resident-count-derived resource split
 *   Partition makePartition(int n) const;
 *   Rate phaseRate(std::size_t client, const isa::KernelPhase&,
 *                  const Partition&) const;
 *   double demand(const Rate&) const;        // unconstrained bytes/sec
 *   double capacity(const Partition&) const; // negotiable bandwidth
 *   double queueFactor(double total_demand, const Partition&) const;
 *   Seconds finishTime(const Rate&, double bandwidth_share,
 *                      double queue) const;
 *   void tracePartition(obs::Tracer&, const Partition&, Seconds clock,
 *                       int track_pid) const;
 */

#ifndef MAPP_SIM_CORUN_ENGINE_H
#define MAPP_SIM_CORUN_ENGINE_H

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <limits>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "common/sharing.h"
#include "common/types.h"
#include "isa/trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mapp::sim {

/** Engine-wide event counts of one co-run, for the caller's metrics. */
struct CorunStats
{
    std::size_t events = 0;
    std::size_t repartitions = 0;
    std::size_t phasesCompleted = 0;
};

/**
 * The per-event cap on simulator iterations, guarding against infinite
 * loops from degenerate inputs. Exceeding it raises a located
 * mapp::Error (ErrorCode::Range) naming the bag members and the event
 * count, and bumps the sim.event_limit_hits counter.
 */
std::size_t eventLimit();

/** Override the event limit (tests only; 0 restores the default). */
void setEventLimit(std::size_t limit);

/** Shared instrument references for the sim.* metrics family. */
struct SimInstruments
{
    obs::Counter& bags;
    obs::Counter& events;
    obs::Counter& repartitions;
    obs::Counter& eventLimitHits;
    obs::Histogram& bagSeconds;
};

/** The process-wide sim.* instruments, resolved once. */
const SimInstruments& simInstruments();

/** @internal Raise the event-limit error for @p traces. */
[[noreturn]] void raiseEventLimitExceeded(
    const char* sim_name,
    std::span<const isa::WorkloadTrace* const> traces,
    std::size_t event_count);

/**
 * The preallocated per-thread scratch arena of one engine
 * instantiation. Vectors are resized per bag but keep their capacity
 * across bags, so the steady state allocates nothing.
 */
template <class Rate>
struct CorunScratch
{
    // Indexed by client (0..N-1).
    std::vector<std::size_t> phase;
    std::vector<double> phaseFraction;
    std::vector<Rate> rates;
    std::vector<double> demandOf;
    std::vector<Seconds> phaseStart;  ///< tracing only

    // The resident set, ascending client order; compacted in order.
    std::vector<std::size_t> active;

    // Indexed by active position (0..n-1), repacked each event.
    std::vector<double> demands;
    std::vector<double> granted;
    std::vector<Seconds> remaining;
    std::vector<Seconds> durations;

    // maxMinShareInto() waterfill scratch.
    std::vector<std::size_t> hungry;
};

/** The thread-local scratch arena for rate type @p Rate. */
template <class Rate>
CorunScratch<Rate>&
corunScratch()
{
    thread_local CorunScratch<Rate> scratch;
    return scratch;
}

/**
 * Co-run @p traces under @p model until every client finishes. Writes
 * each client's completion time (the global clock at its last phase
 * completion) into @p finish_out, which must have traces.size()
 * entries. Callers validate the bag (non-null, non-empty traces)
 * before entry.
 *
 * Flushes the sim.* metrics family (one batch per bag; the hot loop is
 * atomics-free) and returns the event counts so the caller can flush
 * its simulator-specific counters too.
 */
template <class Model>
CorunStats
runCorun(const Model& model,
         std::span<const isa::WorkloadTrace* const> traces,
         std::span<Seconds> finish_out)
{
    using Rate = typename Model::Rate;
    const auto wallStart = std::chrono::steady_clock::now();

    const std::size_t numClients = traces.size();
    auto& scratch = corunScratch<Rate>();

    scratch.phase.assign(numClients, 0);
    scratch.phaseFraction.assign(numClients, 0.0);
    scratch.rates.resize(numClients);
    scratch.demandOf.resize(numClients);
    scratch.active.resize(numClients);
    std::iota(scratch.active.begin(), scratch.active.end(),
              std::size_t{0});
    scratch.demands.resize(numClients);
    scratch.granted.resize(numClients);
    scratch.remaining.resize(numClients);
    scratch.durations.resize(numClients);
    std::fill(finish_out.begin(), finish_out.end(), -1.0);

    // Nothing below reallocates, so the vectors' data pointers are
    // loop-invariant; hoisting them keeps the hot loop free of
    // pointer re-loads around the opaque model calls.
    std::size_t* const phaseOf = scratch.phase.data();
    double* const fractionOf = scratch.phaseFraction.data();
    Rate* const rateOf = scratch.rates.data();
    double* const demandOf = scratch.demandOf.data();
    std::size_t* const active = scratch.active.data();
    double* const demands = scratch.demands.data();
    double* const granted = scratch.granted.data();
    Seconds* const remainingOf = scratch.remaining.data();
    Seconds* const durationOf = scratch.durations.data();
    std::size_t activeCount = numClients;

    Seconds clock = 0.0;
    const std::size_t maxEvents = eventLimit();
    CorunStats stats;

    // Tracing costs one branch per simulator event when disabled; the
    // per-client bookkeeping is only allocated when a trace is taken.
    obs::Tracer& tracer = obs::tracer();
    const bool tracing = tracer.enabled();
    int trackPid = 0;
    if (tracing) {
        scratch.phaseStart.assign(numClients, 0.0);
        std::string label = std::string(Model::kName) + " bag:";
        for (const auto* trace : traces)
            label += " " + trace->app();
        trackPid = tracer.beginTrack(label);
        for (std::size_t i = 0; i < numClients; ++i) {
            tracer.nameThread(trackPid, static_cast<int>(i),
                              std::string(Model::kClientWord) + " " +
                                  std::to_string(i) + " (" +
                                  traces[i]->app() + ")");
        }
    }

    std::size_t lastResident = 0;
    typename Model::Partition part{};

    while (activeCount > 0) {
        if (++stats.events > maxEvents) {
            simInstruments().eventLimitHits.add(1);
            raiseEventLimitExceeded(Model::kName, traces, stats.events);
        }

        const std::size_t n = activeCount;

        // The resident set changed: resources are re-divided and every
        // resident's rate terms shift with the new partition. (The
        // first event always lands here: lastResident starts at 0.)
        if (n != lastResident) {
            part = model.makePartition(static_cast<int>(n));
            lastResident = n;
            ++stats.repartitions;
            if (tracing)
                model.tracePartition(tracer, part, clock, trackPid);
            for (std::size_t j = 0; j < n; ++j) {
                const std::size_t k = active[j];
                rateOf[k] = model.phaseRate(
                    k, traces[k]->phases()[phaseOf[k]], part);
                demandOf[k] = model.demand(rateOf[k]);
            }
        }

        // Bandwidth negotiation over the residents' current demands.
        // Packed in ascending client order — the waterfill and the
        // total-demand sum are FP-order-sensitive.
        for (std::size_t j = 0; j < n; ++j)
            demands[j] = demandOf[active[j]];
        maxMinShareInto(std::span<const double>(demands, n),
                        model.capacity(part),
                        std::span<double>(granted, n), scratch.hungry);
        double totalDemand = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            totalDemand += demands[j];
        const double queue = model.queueFactor(totalDemand, part);

        // Finish per-event timing from the precomputed rates.
        Seconds dt = std::numeric_limits<Seconds>::infinity();
        for (std::size_t j = 0; j < n; ++j) {
            const std::size_t k = active[j];
            const double share = std::max(granted[j], 1.0);
            const Seconds t = model.finishTime(rateOf[k], share, queue);
            durationOf[j] = std::max(t, 1e-15);
            remainingOf[j] = durationOf[j] * (1.0 - fractionOf[k]);
            dt = std::min(dt, remainingOf[j]);
        }

        // Advance to the earliest phase completion; compact finished
        // clients out of the active set in order.
        clock += dt;
        std::size_t write = 0;
        for (std::size_t j = 0; j < n; ++j) {
            const std::size_t k = active[j];
            if (remainingOf[j] - dt <= durationOf[j] * 1e-12) {
                ++stats.phasesCompleted;
                if (tracing) {
                    tracer.completeEvent(
                        traces[k]->phases()[phaseOf[k]].name,
                        std::string(Model::kName) + ".phase",
                        scratch.phaseStart[k] * 1e6,
                        (clock - scratch.phaseStart[k]) * 1e6, trackPid,
                        static_cast<int>(k),
                        {obs::TraceArg::str("app", traces[k]->app()),
                         obs::TraceArg::num(
                             "phase_index",
                             static_cast<double>(phaseOf[k]))});
                    scratch.phaseStart[k] = clock;
                }
                phaseOf[k] += 1;
                fractionOf[k] = 0.0;
                if (phaseOf[k] >= traces[k]->phases().size()) {
                    finish_out[k] = clock;
                    continue;  // drops k from the active set
                }
                // New phase under the unchanged partition: refresh
                // only this client's rate terms.
                rateOf[k] = model.phaseRate(
                    k, traces[k]->phases()[phaseOf[k]], part);
                demandOf[k] = model.demand(rateOf[k]);
            } else {
                fractionOf[k] += dt / durationOf[j];
            }
            active[write++] = k;
        }
        activeCount = write;
    }

    // Flush the bag's metrics in one batch.
    {
        const auto& ins = simInstruments();
        ins.bags.add(1);
        ins.events.add(stats.events);
        ins.repartitions.add(stats.repartitions);
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wallStart;
        ins.bagSeconds.observe(wall.count());
    }
    return stats;
}

}  // namespace mapp::sim

#endif  // MAPP_SIM_CORUN_ENGINE_H
