/**
 * @file
 * Literal transcriptions of the original (pre-engine) simulator event
 * loops, kept as the bit-identity oracle for the shared co-run engine.
 *
 * runCorun() in corun_engine.h must produce bit-identical completion
 * times to these loops — same event ordering, same floating-point
 * sequence. The golden fuzz suite (tests/test_sim_engine.cc) compares
 * the two on randomized bags with EXPECT_EQ on raw doubles, and
 * bench_micro_sim uses these loops as the in-process "before" baseline
 * so the reported speedup is measured under one machine state.
 *
 * Do not optimize or "clean up" these functions: every allocation and
 * every expression is the seed implementation verbatim (minus tracing
 * and metrics, which do not feed back into the simulated times).
 *
 * Header-only on purpose — mapp_sim must not link against the two
 * simulator libraries; only tests and benches that already link both
 * include this file.
 */

#ifndef MAPP_SIM_SEED_REFERENCE_H
#define MAPP_SIM_SEED_REFERENCE_H

#include <algorithm>
#include <limits>
#include <vector>

#include "common/sharing.h"
#include "common/types.h"
#include "cpusim/core_model.h"
#include "cpusim/cpu_config.h"
#include "cpusim/memory_model.h"
#include "gpusim/gpu_config.h"
#include "gpusim/sm_model.h"
#include "isa/trace.h"

namespace mapp::sim::reference {

/** The seed gpusim event loop; returns per-client completion times. */
inline std::vector<Seconds>
runGpuSeedLoop(const std::vector<const isa::WorkloadTrace*>& traces,
               const gpusim::GpuConfig& config,
               const gpusim::L2ModelParams& l2_params = {})
{
    struct ClientState
    {
        const isa::WorkloadTrace* trace = nullptr;
        std::size_t phase = 0;
        double phaseFraction = 0.0;
        Seconds finishTime = -1.0;

        bool done() const { return phase >= trace->phases().size(); }
        const isa::KernelPhase& currentPhase() const
        {
            return trace->phases()[phase];
        }
    };

    std::vector<ClientState> clients(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i)
        clients[i].trace = traces[i];

    Seconds clock = 0.0;

    while (true) {
        std::vector<std::size_t> active;
        for (std::size_t i = 0; i < clients.size(); ++i)
            if (!clients[i].done())
                active.push_back(i);
        if (active.empty())
            break;

        const auto n = static_cast<int>(active.size());

        const int smsEach = std::max(config.numSms / n, 1);
        const Bytes l2Each = config.l2Size / static_cast<Bytes>(n);
        const double peakBw =
            config.memBandwidth *
            std::max(1.0 - config.dramInterferenceLoss *
                               static_cast<double>(n - 1),
                     0.3);

        std::vector<gpusim::GpuAllocation> allocs(active.size());
        std::vector<double> demands(active.size());
        for (std::size_t k = 0; k < active.size(); ++k) {
            auto& a = allocs[k];
            a.sms = smsEach;
            a.l2Share = l2Each;
            a.residentApps = n;
            demands[k] = gpusim::gpuPhaseBandwidthDemand(
                clients[active[k]].currentPhase(), a, config, l2_params);
        }
        const auto granted = maxMinShare(demands, peakBw);
        double totalDemand = 0.0;
        for (double d : demands)
            totalDemand += d;
        const double queue =
            queueingDelayFactor(std::min(totalDemand / peakBw, 1.0));

        std::vector<Seconds> remaining(active.size());
        std::vector<Seconds> durations(active.size());
        Seconds dt = std::numeric_limits<Seconds>::infinity();
        for (std::size_t k = 0; k < active.size(); ++k) {
            allocs[k].bandwidthShare = std::max(granted[k], 1.0);
            allocs[k].memQueueFactor = queue;
            const gpusim::GpuPhaseTiming t = gpusim::timeGpuPhase(
                clients[active[k]].currentPhase(), allocs[k], config,
                l2_params);
            durations[k] = std::max(t.time, 1e-15);
            remaining[k] =
                durations[k] * (1.0 - clients[active[k]].phaseFraction);
            dt = std::min(dt, remaining[k]);
        }

        clock += dt;
        for (std::size_t k = 0; k < active.size(); ++k) {
            ClientState& client = clients[active[k]];
            if (remaining[k] - dt <= durations[k] * 1e-12) {
                client.phase += 1;
                client.phaseFraction = 0.0;
                if (client.done())
                    client.finishTime = clock;
            } else {
                client.phaseFraction += dt / durations[k];
            }
        }
    }

    std::vector<Seconds> finish(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i)
        finish[i] = clients[i].finishTime;
    return finish;
}

/** The seed cpusim event loop; returns per-app completion times. */
inline std::vector<Seconds>
runCpuSeedLoop(const std::vector<const isa::WorkloadTrace*>& traces,
               const std::vector<int>& threads,
               const cpusim::CpuConfig& config,
               const cpusim::CacheModelParams& cache_params = {})
{
    struct AppState
    {
        const isa::WorkloadTrace* trace = nullptr;
        int threads = 1;
        std::size_t phase = 0;
        double phaseFraction = 0.0;
        Seconds finishTime = -1.0;

        bool done() const { return phase >= trace->phases().size(); }
        const isa::KernelPhase& currentPhase() const
        {
            return trace->phases()[phase];
        }
    };

    std::vector<AppState> apps(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        apps[i].trace = traces[i];
        apps[i].threads = std::max(threads[i], 1);
    }

    Seconds clock = 0.0;

    while (true) {
        std::vector<std::size_t> active;
        for (std::size_t i = 0; i < apps.size(); ++i)
            if (!apps[i].done())
                active.push_back(i);
        if (active.empty())
            break;

        const auto n = static_cast<int>(active.size());
        const int coresEach = std::max(config.logicalCores() / n, 1);
        const Bytes llcEach = config.llcSize / static_cast<Bytes>(n);

        std::vector<cpusim::CpuAllocation> allocs(active.size());
        std::vector<BytesPerSecond> demands(active.size());
        for (std::size_t k = 0; k < active.size(); ++k) {
            auto& a = allocs[k];
            a.threads = apps[active[k]].threads;
            a.logicalCores = coresEach;
            a.llcShare = llcEach;
            demands[k] = cpusim::phaseBandwidthDemand(
                apps[active[k]].currentPhase(), a, config, cache_params);
        }
        const auto granted =
            cpusim::shareBandwidth(demands, config.memBandwidth);
        double totalDemand = 0.0;
        for (double d : demands)
            totalDemand += d;
        const double utilization =
            std::min(totalDemand / config.memBandwidth, 1.0);
        const double queue = cpusim::queueingFactor(utilization);

        std::vector<Seconds> remaining(active.size());
        std::vector<Seconds> durations(active.size());
        Seconds dt = std::numeric_limits<Seconds>::infinity();
        for (std::size_t k = 0; k < active.size(); ++k) {
            allocs[k].bandwidthShare = std::max(granted[k], 1.0);
            allocs[k].memQueueFactor = queue;
            const cpusim::PhaseTiming t = cpusim::timePhase(
                apps[active[k]].currentPhase(), allocs[k], config,
                cache_params);
            durations[k] = std::max(t.time, 1e-15);
            remaining[k] =
                durations[k] * (1.0 - apps[active[k]].phaseFraction);
            dt = std::min(dt, remaining[k]);
        }

        clock += dt;
        for (std::size_t k = 0; k < active.size(); ++k) {
            AppState& app = apps[active[k]];
            if (remaining[k] - dt <= durations[k] * 1e-12) {
                app.phase += 1;
                app.phaseFraction = 0.0;
                if (app.done())
                    app.finishTime = clock;
            } else {
                app.phaseFraction += dt / durations[k];
            }
        }
    }

    std::vector<Seconds> finish(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i)
        finish[i] = apps[i].finishTime;
    return finish;
}

}  // namespace mapp::sim::reference

#endif  // MAPP_SIM_SEED_REFERENCE_H
