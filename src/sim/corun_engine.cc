#include "sim/corun_engine.h"

#include <atomic>

#include "common/error.h"

namespace mapp::sim {

namespace {

constexpr std::size_t kDefaultEventLimit = 16 * 1024 * 1024;

std::atomic<std::size_t> g_eventLimit{kDefaultEventLimit};

}  // namespace

std::size_t
eventLimit()
{
    return g_eventLimit.load(std::memory_order_relaxed);
}

void
setEventLimit(std::size_t limit)
{
    g_eventLimit.store(limit == 0 ? kDefaultEventLimit : limit,
                       std::memory_order_relaxed);
}

const SimInstruments&
simInstruments()
{
    static auto& registry = obs::defaultRegistry();
    static const SimInstruments instruments{
        registry.counter("sim.bags"),
        registry.counter("sim.events"),
        registry.counter("sim.repartitions"),
        registry.counter("sim.event_limit_hits"),
        registry.histogram("sim.bag_seconds"),
    };
    return instruments;
}

void
raiseEventLimitExceeded(const char* sim_name,
                        std::span<const isa::WorkloadTrace* const> traces,
                        std::size_t event_count)
{
    std::string members;
    for (const auto* trace : traces) {
        if (!members.empty())
            members += "+";
        members += trace->app();
    }
    SourceContext context;
    context.file = std::string(sim_name) + " bag " + members;
    raise(Error(ErrorCode::Range,
                "co-run simulation exceeded the event limit (" +
                    std::to_string(event_count - 1) +
                    " events) — the bag {" + members +
                    "} never converges; a phase duration is likely "
                    "degenerate",
                std::move(context)));
}

}  // namespace mapp::sim
