/**
 * @file
 * The op-level profiler the instrumented vision primitives report into.
 *
 * This is MAPP's stand-in for PIN: while a vision kernel executes its real
 * computation, each primitive op tallies the dynamic instructions, memory
 * traffic and behavioural attributes of the work it just performed and
 * records them as a KernelPhase. A ProfilerSession binds a trace under
 * construction to the current thread; with no active session recording is
 * a no-op, so the kernels run unperturbed when only their functional
 * output is wanted.
 */

#ifndef MAPP_PROFILER_OP_PROFILER_H
#define MAPP_PROFILER_OP_PROFILER_H

#include <string>

#include "isa/kernel_phase.h"
#include "isa/trace.h"

namespace mapp::profiler {

/**
 * RAII scope that makes a WorkloadTrace the recording target for the
 * current thread. Sessions may not be nested on one thread.
 */
class ProfilerSession
{
  public:
    /**
     * Begin recording into a fresh trace.
     * @param app workload name stored in the trace
     * @param batch_size input batch size stored in the trace
     * @throws FatalError if a session is already active on this thread
     */
    ProfilerSession(std::string app, int batch_size);

    /** Ends the session; the trace remains retrievable via take(). */
    ~ProfilerSession();

    ProfilerSession(const ProfilerSession&) = delete;
    ProfilerSession& operator=(const ProfilerSession&) = delete;

    /** Move the completed trace out of the session. */
    isa::WorkloadTrace take();

    /** The trace built so far (for inspection mid-session). */
    const isa::WorkloadTrace& trace() const { return trace_; }

  private:
    isa::WorkloadTrace trace_;
};

/** True if a session is active on this thread. */
bool sessionActive();

/**
 * Record one phase into the active session; silently ignored if no
 * session is active (validates the phase either way so instrumentation
 * bugs surface in tests).
 */
void record(isa::KernelPhase phase);

/** Total phases recorded on this thread since process start (test aid). */
std::size_t recordedPhaseCount();

}  // namespace mapp::profiler

#endif  // MAPP_PROFILER_OP_PROFILER_H
