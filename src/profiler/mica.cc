#include "profiler/mica.h"

#include <sstream>

namespace mapp::profiler {

double
MicaReport::percent(isa::InstClass c) const
{
    return mixPercent[static_cast<std::size_t>(c)];
}

double
MicaReport::memPercent() const
{
    return percent(isa::InstClass::MemRead) +
           percent(isa::InstClass::MemWrite);
}

std::string
MicaReport::toString() const
{
    std::ostringstream os;
    os.precision(2);
    os << std::fixed;
    os << app << " (batch=" << batchSize << ")\n"
       << "  instructions: " << instructions << '\n'
       << "  mix:";
    for (isa::InstClass c : isa::kAllInstClasses)
        os << ' ' << isa::instClassName(c) << '=' << percent(c) << '%';
    os << '\n'
       << "  bytes/inst: " << bytesPerInstruction << '\n'
       << "  footprint: " << footprint / 1024 << " KiB\n"
       << "  locality: " << locality
       << "  parallel: " << parallelFraction
       << "  divergence: " << branchDivergence << '\n';
    return os.str();
}

MicaReport
characterize(const isa::WorkloadTrace& trace)
{
    MicaReport r;
    r.app = trace.app();
    r.batchSize = trace.batchSize();
    r.instructions = trace.totalInstructions();

    const isa::InstMix mix = trace.totalMix();
    for (isa::InstClass c : isa::kAllInstClasses)
        r.mixPercent[static_cast<std::size_t>(c)] = mix.percent(c);

    const auto traffic = static_cast<double>(trace.totalBytesRead() +
                                             trace.totalBytesWritten());
    r.bytesPerInstruction =
        r.instructions
            ? traffic / static_cast<double>(r.instructions)
            : 0.0;
    r.footprint = trace.peakFootprint();
    r.locality = trace.meanLocality();
    r.parallelFraction = trace.meanParallelFraction();
    r.branchDivergence = trace.meanBranchDivergence();
    return r;
}

}  // namespace mapp::profiler
