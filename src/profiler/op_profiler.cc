#include "profiler/op_profiler.h"

#include "common/log.h"

namespace mapp::profiler {

namespace {

thread_local ProfilerSession* gActiveSession = nullptr;
thread_local isa::WorkloadTrace* gActiveTrace = nullptr;
thread_local std::size_t gRecorded = 0;

}  // namespace

ProfilerSession::ProfilerSession(std::string app, int batch_size)
    : trace_(std::move(app), batch_size)
{
    if (gActiveSession != nullptr)
        fatal("ProfilerSession: sessions may not be nested on a thread");
    gActiveSession = this;
    gActiveTrace = &trace_;
}

ProfilerSession::~ProfilerSession()
{
    if (gActiveSession == this) {
        gActiveSession = nullptr;
        gActiveTrace = nullptr;
    }
}

isa::WorkloadTrace
ProfilerSession::take()
{
    if (gActiveSession == this) {
        gActiveSession = nullptr;
        gActiveTrace = nullptr;
    }
    return std::move(trace_);
}

bool
sessionActive()
{
    return gActiveSession != nullptr;
}

void
record(isa::KernelPhase phase)
{
    phase.validate();
    ++gRecorded;
    if (gActiveTrace != nullptr)
        gActiveTrace->append(std::move(phase));
}

std::size_t
recordedPhaseCount()
{
    return gRecorded;
}

}  // namespace mapp::profiler
