/**
 * @file
 * MICA-style microarchitecture-independent characterization of a profiled
 * workload trace. The report carries exactly the quantities the paper's
 * feature vector consumes (instruction-mix percentages, Table IV) plus
 * the auxiliary characteristics the simulators use.
 */

#ifndef MAPP_PROFILER_MICA_H
#define MAPP_PROFILER_MICA_H

#include <array>
#include <string>

#include "common/types.h"
#include "isa/trace.h"

namespace mapp::profiler {

/** Architecture-independent characterization of one workload trace. */
struct MicaReport
{
    /** Workload name. */
    std::string app;

    /** Input batch size. */
    int batchSize = 0;

    /** Total dynamic instructions. */
    InstCount instructions = 0;

    /** Mix percentages indexed by isa::InstClass (0-100). */
    std::array<double, isa::kNumInstClasses> mixPercent{};

    /** Bytes of memory traffic per instruction. */
    double bytesPerInstruction = 0.0;

    /** Peak working-set footprint in bytes. */
    Bytes footprint = 0;

    /** Instruction-weighted locality in [0, 1]. */
    double locality = 0.0;

    /** Instruction-weighted parallel fraction in [0, 1]. */
    double parallelFraction = 0.0;

    /** Instruction-weighted branch divergence in [0, 1]. */
    double branchDivergence = 0.0;

    /** Mix percentage for one class. */
    double percent(isa::InstClass c) const;

    /** Table IV's "MEM" = mem_rd + mem_wr percentages. */
    double memPercent() const;

    /** Render the report as a compact multi-line string. */
    std::string toString() const;
};

/** Build the MICA report for a trace. */
MicaReport characterize(const isa::WorkloadTrace& trace);

}  // namespace mapp::profiler

#endif  // MAPP_PROFILER_MICA_H
