#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace mapp::ml {

namespace {

/** Mean and SSE of the targets at the given indices. */
std::pair<double, double>
meanAndSse(const std::vector<double>& targets,
           const std::vector<std::size_t>& indices)
{
    if (indices.empty())
        return {0.0, 0.0};
    double mean = 0.0;
    for (std::size_t i : indices)
        mean += targets[i];
    mean /= static_cast<double>(indices.size());
    double sse = 0.0;
    for (std::size_t i : indices)
        sse += (targets[i] - mean) * (targets[i] - mean);
    return {mean, sse};
}

/** The best (threshold, sseLeft+sseRight) split of one feature. */
struct SplitCandidate
{
    bool valid = false;
    int feature = -1;
    double threshold = 0.0;
    double childSse = std::numeric_limits<double>::infinity();
};

/**
 * Relative tolerance under which two candidate child SSEs count as
 * tied. The campaign features are strongly correlated, so distinct
 * (feature, threshold) splits routinely induce the *same* partition
 * and their scores differ only by summation-order rounding; without a
 * tolerance the winner would be decided by last-bit noise.
 */
constexpr double kSseTieTolerance = 1e-9;

}  // namespace

void
DecisionTreeRegressor::fit(const Dataset& data)
{
    fit(data.rows(), data.targets(), data.featureNames());
}

void
DecisionTreeRegressor::fit(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets,
                           std::vector<std::string> feature_names)
{
    if (rows.empty() || rows.size() != targets.size())
        fatal("DecisionTreeRegressor::fit: empty or mismatched data");
    // A single NaN/Inf would silently corrupt every split score (any
    // comparison with NaN is false), so reject the fit up front with a
    // locatable message instead of training a poisoned model.
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (!std::isfinite(targets[r]))
            fatal("DecisionTreeRegressor::fit: non-finite target at row " +
                  std::to_string(r));
        for (std::size_t f = 0; f < rows[r].size(); ++f) {
            if (!std::isfinite(rows[r][f]))
                fatal("DecisionTreeRegressor::fit: non-finite feature " +
                      std::to_string(f) + " at row " + std::to_string(r));
        }
    }

    auto& registry = obs::defaultRegistry();
    const obs::ScopedTimer timer(registry, "ml.tree.fit_seconds");

    nodes_.clear();
    if (feature_names.empty())
        feature_names.assign(rows.front().size(), "");
    featureNames_ = std::move(feature_names);

    const std::size_t n = rows.size();
    const std::size_t numFeatures = rows.front().size();

    if (numFeatures == 0) {
        // Degenerate featureless fit: a single mean leaf.
        std::vector<std::size_t> all(n);
        std::iota(all.begin(), all.end(), std::size_t{0});
        auto [mean, sse] = meanAndSse(targets, all);
        nodes_.emplace_back();
        nodes_.back().value = mean;
        nodes_.back().sse = sse;
        nodes_.back().samples = static_cast<int>(n);
    } else {
        // Classic CART presort: order the samples by every feature
        // once at the root (O(F n log n) total); child nodes inherit
        // their orders by stable partition, so no node ever sorts.
        std::vector<std::vector<std::size_t>> orders(numFeatures);
        for (std::size_t f = 0; f < numFeatures; ++f) {
            auto& order = orders[f];
            order.resize(n);
            std::iota(order.begin(), order.end(), std::size_t{0});
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (rows[a][f] != rows[b][f])
                              return rows[a][f] < rows[b][f];
                          return a < b;  // deterministic tie order
                      });
        }
        std::vector<std::size_t> indices(n);
        std::iota(indices.begin(), indices.end(), std::size_t{0});
        std::vector<char> side(n);
        buildNode(rows, targets, orders, indices, 0, side);
    }

    registry.counter("ml.tree.fits").add(1);
    registry.counter("ml.tree.nodes_built").add(nodes_.size());
    registry.gauge("ml.tree.last_depth")
        .set(static_cast<double>(depth()));
}

int
DecisionTreeRegressor::buildNode(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets,
    std::vector<std::vector<std::size_t>>& orders,
    const std::vector<std::size_t>& indices, int depth,
    std::vector<char>& side)
{
    const int nodeId = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    // Node statistics sum in partition order (not sorted order): the
    // floating-point sums — and therefore every leaf value and split
    // score — match the naive per-node-sort search bit for bit.
    auto [mean, sse] = meanAndSse(targets, indices);
    {
        Node& node = nodes_.back();
        node.value = mean;
        node.sse = sse;
        node.samples = static_cast<int>(indices.size());
        node.depth = depth;
    }

    const auto n = indices.size();
    if (depth >= params_.maxDepth ||
        n < static_cast<std::size_t>(params_.minSamplesSplit) ||
        sse <= 1e-12) {
        return nodeId;
    }

    // Greedy exhaustive split search: every feature's samples arrive
    // already sorted, so each candidate boundary between distinct
    // values is evaluated in one O(n) prefix-sum sweep per feature.
    const std::size_t numFeatures = orders.size();
    SplitCandidate best;

    for (std::size_t f = 0; f < numFeatures; ++f) {
        const auto& order = orders[f];
        // Totals are re-summed per feature in that feature's sorted
        // order, matching the accumulation order of the naive search.
        double sumTotal = 0.0;
        double sqTotal = 0.0;
        for (std::size_t i : order) {
            sumTotal += targets[i];
            sqTotal += targets[i] * targets[i];
        }
        double sumLeft = 0.0;
        double sqLeft = 0.0;

        for (std::size_t k = 0; k + 1 < order.size(); ++k) {
            const double y = targets[order[k]];
            sumLeft += y;
            sqLeft += y * y;

            const double xk = rows[order[k]][f];
            const double xn = rows[order[k + 1]][f];
            if (xn <= xk)  // not a boundary between distinct values
                continue;

            const auto nl = static_cast<double>(k + 1);
            const auto nr = static_cast<double>(order.size() - k - 1);
            if (nl < params_.minSamplesLeaf || nr < params_.minSamplesLeaf)
                continue;

            const double sseL = sqLeft - sumLeft * sumLeft / nl;
            const double sumR = sumTotal - sumLeft;
            const double sqR = sqTotal - sqLeft;
            const double sseR = sqR - sumR * sumR / nr;
            const double childSse = sseL + sseR;

            // Strictly better wins; within-tolerance ties go to the
            // later candidate (highest feature, then highest
            // threshold) — an explicit deterministic rule instead of
            // letting rounding noise pick the winner.
            bool take = !best.valid;
            if (best.valid) {
                const double scale = std::max(
                    {std::fabs(childSse), std::fabs(best.childSse),
                     1e-30});
                if (std::fabs(childSse - best.childSse) <=
                    kSseTieTolerance * scale)
                    take = true;
                else
                    take = childSse < best.childSse;
            }
            if (take) {
                best.valid = true;
                best.feature = static_cast<int>(f);
                best.threshold = (xk + xn) / 2.0;
                best.childSse = childSse;
            }
        }
    }

    if (!best.valid ||
        sse - best.childSse <= params_.minImpurityDecrease + 1e-12) {
        return nodeId;
    }

    // Mark each sample's side once, then stably partition every
    // feature's order so both children stay presorted. The partition-
    // order index list filters the same way, preserving dataset order
    // down the tree.
    std::size_t numLeft = 0;
    for (std::size_t i : indices) {
        side[i] = rows[i][static_cast<std::size_t>(best.feature)] <=
                          best.threshold
                      ? 1
                      : 0;
        numLeft += side[i];
    }
    if (numLeft == 0 || numLeft == n)
        return nodeId;  // numeric degeneracy; keep the leaf

    std::vector<std::size_t> leftIndices;
    std::vector<std::size_t> rightIndices;
    leftIndices.reserve(numLeft);
    rightIndices.reserve(n - numLeft);
    for (std::size_t i : indices) {
        if (side[i])
            leftIndices.push_back(i);
        else
            rightIndices.push_back(i);
    }

    std::vector<std::vector<std::size_t>> leftOrders(numFeatures);
    std::vector<std::vector<std::size_t>> rightOrders(numFeatures);
    for (std::size_t f = 0; f < numFeatures; ++f) {
        leftOrders[f].reserve(numLeft);
        rightOrders[f].reserve(n - numLeft);
        for (std::size_t i : orders[f]) {
            if (side[i])
                leftOrders[f].push_back(i);
            else
                rightOrders[f].push_back(i);
        }
        // Release the parent's copy early: peak memory stays O(F n)
        // per level of the *current* path, not of the whole tree.
        orders[f] = std::vector<std::size_t>();
    }

    // Recurse; re-fetch the node reference afterwards (vector may grow).
    const int left = buildNode(rows, targets, leftOrders, leftIndices,
                               depth + 1, side);
    const int right = buildNode(rows, targets, rightOrders, rightIndices,
                                depth + 1, side);
    Node& node = nodes_[static_cast<std::size_t>(nodeId)];
    node.leaf = false;
    node.feature = best.feature;
    node.threshold = best.threshold;
    node.left = left;
    node.right = right;
    return nodeId;
}

double
DecisionTreeRegressor::predict(std::span<const double> x) const
{
    if (nodes_.empty())
        fatal("DecisionTreeRegressor::predict: model not trained");
    int cur = 0;
    while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
        const Node& node = nodes_[static_cast<std::size_t>(cur)];
        cur = x[static_cast<std::size_t>(node.feature)] <= node.threshold
                  ? node.left
                  : node.right;
    }
    return nodes_[static_cast<std::size_t>(cur)].value;
}

std::vector<double>
DecisionTreeRegressor::predict(const Dataset& data) const
{
    if (nodes_.empty())
        fatal("DecisionTreeRegressor::predict: model not trained");
    // Sized up front and walked without the per-call trained check:
    // this loop is the oracle the compiled engine is checked against,
    // so it stays a plain node walk, just not a needlessly slow one.
    std::vector<double> out(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto& x = data.row(i);
        int cur = 0;
        while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
            const Node& node = nodes_[static_cast<std::size_t>(cur)];
            cur = x[static_cast<std::size_t>(node.feature)] <=
                          node.threshold
                      ? node.left
                      : node.right;
        }
        out[i] = nodes_[static_cast<std::size_t>(cur)].value;
    }
    return out;
}

TreeNodeView
DecisionTreeRegressor::nodeView(std::size_t i) const
{
    if (i >= nodes_.size())
        fatal("DecisionTreeRegressor::nodeView: index out of range");
    const Node& node = nodes_[i];
    TreeNodeView v;
    v.leaf = node.leaf;
    v.feature = node.feature;
    v.threshold = node.threshold;
    v.value = node.value;
    v.sse = node.sse;
    v.samples = node.samples;
    v.left = node.left;
    v.right = node.right;
    return v;
}

std::vector<DecisionStep>
DecisionTreeRegressor::decisionPath(std::span<const double> x) const
{
    if (nodes_.empty())
        fatal("DecisionTreeRegressor::decisionPath: model not trained");
    std::vector<DecisionStep> path;
    int cur = 0;
    while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
        const Node& node = nodes_[static_cast<std::size_t>(cur)];
        DecisionStep step;
        step.nodeId = cur;
        step.feature = node.feature;
        step.threshold = node.threshold;
        step.wentLeft =
            x[static_cast<std::size_t>(node.feature)] <= node.threshold;
        path.push_back(step);
        cur = step.wentLeft ? node.left : node.right;
    }
    return path;
}

std::vector<int>
DecisionTreeRegressor::featureUsageCounts(std::span<const double> x) const
{
    std::vector<int> counts(featureNames_.size(), 0);
    for (const auto& step : decisionPath(x))
        counts[static_cast<std::size_t>(step.feature)] += 1;
    return counts;
}

int
DecisionTreeRegressor::depth() const
{
    int best = 0;
    for (const auto& node : nodes_)
        best = std::max(best, node.depth);
    return best;
}

std::vector<double>
DecisionTreeRegressor::featureImportances() const
{
    std::vector<double> imp(featureNames_.size(), 0.0);
    for (const auto& node : nodes_) {
        if (node.leaf)
            continue;
        const Node& l = nodes_[static_cast<std::size_t>(node.left)];
        const Node& r = nodes_[static_cast<std::size_t>(node.right)];
        const double decrease = node.sse - l.sse - r.sse;
        imp[static_cast<std::size_t>(node.feature)] +=
            std::max(decrease, 0.0);
    }
    double total = 0.0;
    for (double v : imp)
        total += v;
    if (total > 0.0)
        for (auto& v : imp)
            v /= total;
    return imp;
}

namespace {

std::string
featureLabel(const std::vector<std::string>& names, int feature)
{
    const auto idx = static_cast<std::size_t>(feature);
    if (idx < names.size() && !names[idx].empty())
        return names[idx];
    return "f" + std::to_string(feature);
}

}  // namespace

std::string
DecisionTreeRegressor::toText() const
{
    std::ostringstream os;
    os.precision(4);
    // Iterative preorder walk with explicit depth.
    std::vector<int> stack{0};
    while (!stack.empty() && !nodes_.empty()) {
        const int id = stack.back();
        stack.pop_back();
        const Node& node = nodes_[static_cast<std::size_t>(id)];
        os << std::string(static_cast<std::size_t>(node.depth) * 2, ' ');
        if (node.leaf) {
            os << "leaf value=" << node.value << " n=" << node.samples
               << '\n';
        } else {
            os << featureLabel(featureNames_, node.feature)
               << " <= " << node.threshold << " (n=" << node.samples
               << ")\n";
            stack.push_back(node.right);
            stack.push_back(node.left);
        }
    }
    return os.str();
}

std::string
DecisionTreeRegressor::toDot() const
{
    std::ostringstream os;
    os << "digraph DecisionTree {\n  node [shape=box];\n";
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& node = nodes_[i];
        if (node.leaf) {
            os << "  n" << i << " [label=\"" << node.value
               << "\\nn=" << node.samples << "\"];\n";
        } else {
            os << "  n" << i << " [label=\""
               << featureLabel(featureNames_, node.feature)
               << " <= " << node.threshold << "\\nn=" << node.samples
               << "\"];\n";
            os << "  n" << i << " -> n" << node.left
               << " [label=\"yes\"];\n";
            os << "  n" << i << " -> n" << node.right
               << " [label=\"no\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

DecisionTreeRegressor
DecisionTreeRegressor::fromNodes(const std::vector<TreeNodeView>& nodes,
                                 std::vector<std::string> feature_names,
                                 DecisionTreeParams params)
{
    if (nodes.empty())
        fatal("DecisionTreeRegressor::fromNodes: no nodes");
    const auto n = static_cast<int>(nodes.size());
    const auto numFeatures = static_cast<int>(feature_names.size());

    DecisionTreeRegressor tree(params);
    tree.featureNames_ = std::move(feature_names);
    tree.nodes_.resize(nodes.size());

    // Walk from the root assigning depths; every structural check a
    // traversal relies on happens here, so predict() can stay a bare
    // index chase. Each node may be visited at most once (tree, not
    // DAG), which also bounds the walk and rejects cycles.
    std::vector<char> visited(nodes.size(), 0);
    std::vector<std::pair<int, int>> stack{{0, 0}};  // (node, depth)
    std::size_t reached = 0;
    while (!stack.empty()) {
        const auto [id, depth] = stack.back();
        stack.pop_back();
        if (id < 0 || id >= n)
            fatal("DecisionTreeRegressor::fromNodes: child index " +
                  std::to_string(id) + " out of range");
        if (visited[static_cast<std::size_t>(id)])
            fatal("DecisionTreeRegressor::fromNodes: node " +
                  std::to_string(id) + " reachable twice (cycle)");
        visited[static_cast<std::size_t>(id)] = 1;
        ++reached;

        const TreeNodeView& v = nodes[static_cast<std::size_t>(id)];
        Node& node = tree.nodes_[static_cast<std::size_t>(id)];
        node.leaf = v.leaf;
        node.feature = v.feature;
        node.threshold = v.threshold;
        node.value = v.value;
        node.sse = v.sse;
        node.samples = v.samples;
        node.left = v.left;
        node.right = v.right;
        node.depth = depth;
        if (v.leaf) {
            if (v.left != -1 || v.right != -1)
                fatal("DecisionTreeRegressor::fromNodes: leaf " +
                      std::to_string(id) + " has children");
            continue;
        }
        if (v.feature < 0 || v.feature >= numFeatures)
            fatal("DecisionTreeRegressor::fromNodes: node " +
                  std::to_string(id) + " tests feature " +
                  std::to_string(v.feature) + " of " +
                  std::to_string(numFeatures));
        stack.emplace_back(v.right, depth + 1);
        stack.emplace_back(v.left, depth + 1);
    }
    if (reached != nodes.size())
        fatal("DecisionTreeRegressor::fromNodes: " +
              std::to_string(nodes.size() - reached) +
              " nodes unreachable from the root");
    return tree;
}

}  // namespace mapp::ml
