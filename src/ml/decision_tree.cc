#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace mapp::ml {

namespace {

/** Mean and SSE of the targets at the given indices. */
std::pair<double, double>
meanAndSse(const std::vector<double>& targets,
           const std::vector<std::size_t>& indices)
{
    if (indices.empty())
        return {0.0, 0.0};
    double mean = 0.0;
    for (std::size_t i : indices)
        mean += targets[i];
    mean /= static_cast<double>(indices.size());
    double sse = 0.0;
    for (std::size_t i : indices)
        sse += (targets[i] - mean) * (targets[i] - mean);
    return {mean, sse};
}

/** The best (threshold, sseLeft+sseRight) split of one feature. */
struct SplitCandidate
{
    bool valid = false;
    int feature = -1;
    double threshold = 0.0;
    double childSse = std::numeric_limits<double>::infinity();
};

}  // namespace

void
DecisionTreeRegressor::fit(const Dataset& data)
{
    fit(data.rows(), data.targets(), data.featureNames());
}

void
DecisionTreeRegressor::fit(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets,
                           std::vector<std::string> feature_names)
{
    if (rows.empty() || rows.size() != targets.size())
        fatal("DecisionTreeRegressor::fit: empty or mismatched data");

    auto& registry = obs::defaultRegistry();
    const obs::ScopedTimer timer(registry, "ml.tree.fit_seconds");

    nodes_.clear();
    if (feature_names.empty())
        feature_names.assign(rows.front().size(), "");
    featureNames_ = std::move(feature_names);

    std::vector<std::size_t> indices(rows.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    buildNode(rows, targets, indices, 0);

    registry.counter("ml.tree.fits").add(1);
    registry.counter("ml.tree.nodes_built").add(nodes_.size());
    registry.gauge("ml.tree.last_depth")
        .set(static_cast<double>(depth()));
}

int
DecisionTreeRegressor::buildNode(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets,
    std::vector<std::size_t>& indices, int depth)
{
    const int nodeId = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    auto [mean, sse] = meanAndSse(targets, indices);
    {
        Node& node = nodes_.back();
        node.value = mean;
        node.sse = sse;
        node.samples = static_cast<int>(indices.size());
        node.depth = depth;
    }

    const auto n = indices.size();
    if (depth >= params_.maxDepth ||
        n < static_cast<std::size_t>(params_.minSamplesSplit) ||
        sse <= 1e-12) {
        return nodeId;
    }

    // Greedy exhaustive split search: for each feature, sort the node's
    // samples by that feature and evaluate every boundary between
    // distinct values using prefix sums of y and y^2.
    const std::size_t numFeatures = rows.front().size();
    SplitCandidate best;

    std::vector<std::size_t> order(indices);
    for (std::size_t f = 0; f < numFeatures; ++f) {
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return rows[a][f] < rows[b][f];
                  });

        double sumLeft = 0.0;
        double sqLeft = 0.0;
        double sumTotal = 0.0;
        double sqTotal = 0.0;
        for (std::size_t i : order) {
            sumTotal += targets[i];
            sqTotal += targets[i] * targets[i];
        }

        for (std::size_t k = 0; k + 1 < order.size(); ++k) {
            const double y = targets[order[k]];
            sumLeft += y;
            sqLeft += y * y;

            const double xk = rows[order[k]][f];
            const double xn = rows[order[k + 1]][f];
            if (xn <= xk)  // not a boundary between distinct values
                continue;

            const auto nl = static_cast<double>(k + 1);
            const auto nr = static_cast<double>(order.size() - k - 1);
            if (nl < params_.minSamplesLeaf || nr < params_.minSamplesLeaf)
                continue;

            const double sseL = sqLeft - sumLeft * sumLeft / nl;
            const double sumR = sumTotal - sumLeft;
            const double sqR = sqTotal - sqLeft;
            const double sseR = sqR - sumR * sumR / nr;
            const double childSse = sseL + sseR;

            if (childSse < best.childSse) {
                best.valid = true;
                best.feature = static_cast<int>(f);
                best.threshold = (xk + xn) / 2.0;
                best.childSse = childSse;
            }
        }
    }

    if (!best.valid ||
        sse - best.childSse <= params_.minImpurityDecrease + 1e-12) {
        return nodeId;
    }

    std::vector<std::size_t> leftIdx;
    std::vector<std::size_t> rightIdx;
    for (std::size_t i : indices) {
        if (rows[i][static_cast<std::size_t>(best.feature)] <=
            best.threshold) {
            leftIdx.push_back(i);
        } else {
            rightIdx.push_back(i);
        }
    }
    if (leftIdx.empty() || rightIdx.empty())
        return nodeId;  // numeric degeneracy; keep the leaf

    // Recurse; re-fetch the node reference afterwards (vector may grow).
    const int left = buildNode(rows, targets, leftIdx, depth + 1);
    const int right = buildNode(rows, targets, rightIdx, depth + 1);
    Node& node = nodes_[static_cast<std::size_t>(nodeId)];
    node.leaf = false;
    node.feature = best.feature;
    node.threshold = best.threshold;
    node.left = left;
    node.right = right;
    return nodeId;
}

double
DecisionTreeRegressor::predict(std::span<const double> x) const
{
    if (nodes_.empty())
        fatal("DecisionTreeRegressor::predict: model not trained");
    int cur = 0;
    while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
        const Node& node = nodes_[static_cast<std::size_t>(cur)];
        cur = x[static_cast<std::size_t>(node.feature)] <= node.threshold
                  ? node.left
                  : node.right;
    }
    return nodes_[static_cast<std::size_t>(cur)].value;
}

std::vector<double>
DecisionTreeRegressor::predict(const Dataset& data) const
{
    std::vector<double> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        out.push_back(predict(data.row(i)));
    return out;
}

std::vector<DecisionStep>
DecisionTreeRegressor::decisionPath(std::span<const double> x) const
{
    if (nodes_.empty())
        fatal("DecisionTreeRegressor::decisionPath: model not trained");
    std::vector<DecisionStep> path;
    int cur = 0;
    while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
        const Node& node = nodes_[static_cast<std::size_t>(cur)];
        DecisionStep step;
        step.nodeId = cur;
        step.feature = node.feature;
        step.threshold = node.threshold;
        step.wentLeft =
            x[static_cast<std::size_t>(node.feature)] <= node.threshold;
        path.push_back(step);
        cur = step.wentLeft ? node.left : node.right;
    }
    return path;
}

std::vector<int>
DecisionTreeRegressor::featureUsageCounts(std::span<const double> x) const
{
    std::vector<int> counts(featureNames_.size(), 0);
    for (const auto& step : decisionPath(x))
        counts[static_cast<std::size_t>(step.feature)] += 1;
    return counts;
}

int
DecisionTreeRegressor::depth() const
{
    int best = 0;
    for (const auto& node : nodes_)
        best = std::max(best, node.depth);
    return best;
}

std::vector<double>
DecisionTreeRegressor::featureImportances() const
{
    std::vector<double> imp(featureNames_.size(), 0.0);
    for (const auto& node : nodes_) {
        if (node.leaf)
            continue;
        const Node& l = nodes_[static_cast<std::size_t>(node.left)];
        const Node& r = nodes_[static_cast<std::size_t>(node.right)];
        const double decrease = node.sse - l.sse - r.sse;
        imp[static_cast<std::size_t>(node.feature)] +=
            std::max(decrease, 0.0);
    }
    double total = 0.0;
    for (double v : imp)
        total += v;
    if (total > 0.0)
        for (auto& v : imp)
            v /= total;
    return imp;
}

namespace {

std::string
featureLabel(const std::vector<std::string>& names, int feature)
{
    const auto idx = static_cast<std::size_t>(feature);
    if (idx < names.size() && !names[idx].empty())
        return names[idx];
    return "f" + std::to_string(feature);
}

}  // namespace

std::string
DecisionTreeRegressor::toText() const
{
    std::ostringstream os;
    os.precision(4);
    // Iterative preorder walk with explicit depth.
    std::vector<int> stack{0};
    while (!stack.empty() && !nodes_.empty()) {
        const int id = stack.back();
        stack.pop_back();
        const Node& node = nodes_[static_cast<std::size_t>(id)];
        os << std::string(static_cast<std::size_t>(node.depth) * 2, ' ');
        if (node.leaf) {
            os << "leaf value=" << node.value << " n=" << node.samples
               << '\n';
        } else {
            os << featureLabel(featureNames_, node.feature)
               << " <= " << node.threshold << " (n=" << node.samples
               << ")\n";
            stack.push_back(node.right);
            stack.push_back(node.left);
        }
    }
    return os.str();
}

std::string
DecisionTreeRegressor::toDot() const
{
    std::ostringstream os;
    os << "digraph DecisionTree {\n  node [shape=box];\n";
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& node = nodes_[i];
        if (node.leaf) {
            os << "  n" << i << " [label=\"" << node.value
               << "\\nn=" << node.samples << "\"];\n";
        } else {
            os << "  n" << i << " [label=\""
               << featureLabel(featureNames_, node.feature)
               << " <= " << node.threshold << "\\nn=" << node.samples
               << "\"];\n";
            os << "  n" << i << " -> n" << node.left
               << " [label=\"yes\"];\n";
            os << "  n" << i << " -> n" << node.right
               << " [label=\"no\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

}  // namespace mapp::ml
