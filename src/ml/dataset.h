/**
 * @file
 * The regression dataset abstraction: named feature columns, one target
 * column, and a group label per row (the benchmark bag that produced the
 * data point) used for group-aware leave-one-out cross-validation.
 */

#ifndef MAPP_ML_DATASET_H
#define MAPP_ML_DATASET_H

#include <string>
#include <vector>

#include "common/rng.h"

namespace mapp::ml {

/** A feature matrix + target vector + per-row group labels. */
class Dataset
{
  public:
    Dataset() = default;

    /** Create with the given feature column names. */
    explicit Dataset(std::vector<std::string> feature_names);

    const std::vector<std::string>& featureNames() const { return names_; }
    std::size_t numFeatures() const { return names_.size(); }
    std::size_t size() const { return targets_.size(); }
    bool empty() const { return targets_.empty(); }

    /**
     * Append a row.
     * @param features must match numFeatures(); every value finite
     * @param target regression target; must be finite
     * @param group group label (e.g. the benchmark whose bag this is)
     * @throws FatalError on a count mismatch or a NaN/Inf value, so a
     *         corrupt cell can never reach a trained model
     */
    void addRow(std::vector<double> features, double target,
                std::string group = "");

    const std::vector<double>& row(std::size_t i) const { return rows_[i]; }
    double target(std::size_t i) const { return targets_[i]; }
    const std::string& group(std::size_t i) const { return groups_[i]; }

    const std::vector<std::vector<double>>& rows() const { return rows_; }
    const std::vector<double>& targets() const { return targets_; }

    /**
     * Flatten the feature matrix into one contiguous row-major buffer
     * (row r at [r*numFeatures(), (r+1)*numFeatures())) — the layout
     * the compiled batch-inference engine consumes.
     */
    std::vector<double> toRowMajor() const;

    /** Index of a named feature, or -1. */
    int featureIndex(const std::string& name) const;

    /** One feature column as a vector. */
    std::vector<double> column(std::size_t feature) const;

    /** Distinct group labels in first-appearance order. */
    std::vector<std::string> distinctGroups() const;

    /** A new dataset keeping only the named features (same rows). */
    Dataset selectFeatures(const std::vector<std::string>& names) const;

    /** A new dataset with only the rows at @p indices. */
    Dataset subset(const std::vector<std::size_t>& indices) const;

    /**
     * Split into (train, test) with @p test_fraction of rows held out,
     * shuffled deterministically by @p rng.
     */
    std::pair<Dataset, Dataset> trainTestSplit(double test_fraction,
                                               Rng& rng) const;

    /**
     * Split by group: rows whose group equals @p group go to the second
     * (test) dataset.
     */
    std::pair<Dataset, Dataset> splitOutGroup(
        const std::string& group) const;

  private:
    std::vector<std::string> names_;
    std::vector<std::vector<double>> rows_;
    std::vector<double> targets_;
    std::vector<std::string> groups_;
};

}  // namespace mapp::ml

#endif  // MAPP_ML_DATASET_H
