/**
 * @file
 * Ordinary least squares with optional ridge regularization, solved via
 * the normal equations (Cholesky). Included as the baseline regression
 * family the paper discusses (Section II-B.1) and as a comparison model.
 */

#ifndef MAPP_ML_LINEAR_REGRESSION_H
#define MAPP_ML_LINEAR_REGRESSION_H

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace mapp::ml {

/** Linear-regression hyper-parameters. */
struct LinearRegressionParams
{
    double ridge = 1e-8;  ///< L2 regularization (also numerical jitter)
};

/** y = w . x + b fit by (ridge-regularized) least squares. */
class LinearRegression
{
  public:
    explicit LinearRegression(LinearRegressionParams params = {})
        : params_(params)
    {
    }

    /** Fit to a dataset. @throws FatalError on empty data. */
    void fit(const Dataset& data);

    /** Predict one sample. */
    double predict(std::span<const double> x) const;

    /** Predict all rows. */
    std::vector<double> predict(const Dataset& data) const;

    const std::vector<double>& weights() const { return w_; }
    double intercept() const { return b_; }
    bool trained() const { return trained_; }

  private:
    LinearRegressionParams params_;
    std::vector<double> w_;
    double b_ = 0.0;
    bool trained_ = false;
};

}  // namespace mapp::ml

#endif  // MAPP_ML_LINEAR_REGRESSION_H
