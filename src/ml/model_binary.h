/**
 * @file
 * Trained-model binary serialization — the artifact-cache format for
 * fitted trees and forests. A tree is stored as its hyper-parameters,
 * feature names, and flat node array (versioned "MMDL" frame); a
 * forest ("MFRT") nests one tree body per member plus the ensemble
 * parameters. Deserialization rebuilds through
 * DecisionTreeRegressor::fromNodes, which re-validates the structure,
 * so a corrupt model file surfaces as a located mapp::InputError (or a
 * FatalError from the structural checks) and the cache falls back to
 * refitting — a reconstructed model predicts bit-identically to the
 * one that was saved.
 */

#ifndef MAPP_ML_MODEL_BINARY_H
#define MAPP_ML_MODEL_BINARY_H

#include <string>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace mapp::ml {

/** Serialize a trained tree. @throws FatalError if untrained. */
std::string treeToBinary(const DecisionTreeRegressor& tree);

/**
 * Parse a tree from a blob produced by treeToBinary.
 * @param source label for error messages (e.g. the blob's path)
 * @throws InputError on a malformed blob; FatalError on structurally
 *         invalid nodes.
 */
DecisionTreeRegressor treeFromBinary(const std::string& blob,
                                     const std::string& source = "");

/** Serialize a trained forest. @throws FatalError if untrained. */
std::string forestToBinary(const RandomForestRegressor& forest);

/** Parse a forest from a blob produced by forestToBinary. */
RandomForestRegressor forestFromBinary(const std::string& blob,
                                       const std::string& source = "");

/** Write a model blob to a file. @throws InputError on I/O failure. */
void writeModelFile(const std::string& blob, const std::string& path);

/** Read a model blob from a file. @throws InputError on I/O failure. */
std::string readModelFile(const std::string& path);

}  // namespace mapp::ml

#endif  // MAPP_ML_MODEL_BINARY_H
