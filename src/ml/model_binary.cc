#include "ml/model_binary.h"

#include <fstream>
#include <sstream>

#include "cache/binary_io.h"
#include "common/error.h"
#include "common/log.h"

namespace mapp::ml {

namespace {

constexpr std::string_view kTreeMagic = "MMDL";
constexpr std::uint32_t kTreeVersion = 1;
constexpr std::string_view kForestMagic = "MFRT";
constexpr std::uint32_t kForestVersion = 1;

void
writeTreeBody(cache::BinaryWriter& w, const DecisionTreeRegressor& tree)
{
    const auto& p = tree.params();
    w.i32(p.maxDepth);
    w.i32(p.minSamplesSplit);
    w.i32(p.minSamplesLeaf);
    w.f64(p.minImpurityDecrease);
    w.u64(tree.featureNames().size());
    for (const auto& name : tree.featureNames())
        w.str(name);
    w.u64(tree.nodeCount());
    for (std::size_t i = 0; i < tree.nodeCount(); ++i) {
        const TreeNodeView v = tree.nodeView(i);
        w.u8(v.leaf ? 1 : 0);
        w.i32(v.feature);
        w.f64(v.threshold);
        w.f64(v.value);
        w.f64(v.sse);
        w.i32(v.samples);
        w.i32(v.left);
        w.i32(v.right);
    }
}

DecisionTreeRegressor
readTreeBody(cache::BinaryReader& r)
{
    DecisionTreeParams params;
    params.maxDepth = r.i32();
    params.minSamplesSplit = r.i32();
    params.minSamplesLeaf = r.i32();
    params.minImpurityDecrease = r.f64();
    const std::uint64_t numNames = r.u64();
    std::vector<std::string> names;
    names.reserve(numNames);
    for (std::uint64_t k = 0; k < numNames; ++k)
        names.push_back(r.str());
    const std::uint64_t numNodes = r.u64();
    std::vector<TreeNodeView> nodes;
    nodes.reserve(numNodes);
    for (std::uint64_t i = 0; i < numNodes; ++i) {
        TreeNodeView v;
        v.leaf = r.u8() != 0;
        v.feature = r.i32();
        v.threshold = r.f64();
        v.value = r.f64();
        v.sse = r.f64();
        v.samples = r.i32();
        v.left = r.i32();
        v.right = r.i32();
        nodes.push_back(v);
    }
    return DecisionTreeRegressor::fromNodes(nodes, std::move(names),
                                            params);
}

}  // namespace

std::string
treeToBinary(const DecisionTreeRegressor& tree)
{
    if (!tree.trained())
        fatal("treeToBinary: model not trained");
    cache::BinaryWriter w(kTreeMagic, kTreeVersion);
    writeTreeBody(w, tree);
    return std::move(w).finish();
}

DecisionTreeRegressor
treeFromBinary(const std::string& blob, const std::string& source)
{
    cache::BinaryReader r(blob, source, kTreeMagic, kTreeVersion);
    DecisionTreeRegressor tree = readTreeBody(r);
    r.expectEnd();
    return tree;
}

std::string
forestToBinary(const RandomForestRegressor& forest)
{
    if (!forest.trained())
        fatal("forestToBinary: model not trained");
    const auto& p = forest.params();
    cache::BinaryWriter w(kForestMagic, kForestVersion);
    w.i32(p.numTrees);
    w.i32(p.tree.maxDepth);
    w.i32(p.tree.minSamplesSplit);
    w.i32(p.tree.minSamplesLeaf);
    w.f64(p.tree.minImpurityDecrease);
    w.f64(p.sampleFraction);
    w.u64(p.seed);
    w.u64(forest.treeCount());
    for (const auto& tree : forest.trees())
        writeTreeBody(w, tree);
    return std::move(w).finish();
}

RandomForestRegressor
forestFromBinary(const std::string& blob, const std::string& source)
{
    cache::BinaryReader r(blob, source, kForestMagic, kForestVersion);
    RandomForestParams params;
    params.numTrees = r.i32();
    params.tree.maxDepth = r.i32();
    params.tree.minSamplesSplit = r.i32();
    params.tree.minSamplesLeaf = r.i32();
    params.tree.minImpurityDecrease = r.f64();
    params.sampleFraction = r.f64();
    params.seed = r.u64();
    const std::uint64_t count = r.u64();
    std::vector<DecisionTreeRegressor> trees;
    trees.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        trees.push_back(readTreeBody(r));
    r.expectEnd();
    return RandomForestRegressor::fromTrees(std::move(trees), params);
}

void
writeModelFile(const std::string& blob, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        raise({ErrorCode::Io, "cannot open for writing", {path, 0, ""}});
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out)
        raise({ErrorCode::Io, "write failed", {path, 0, ""}});
}

std::string
readModelFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise({ErrorCode::Io, "cannot open file", {path, 0, ""}});
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        raise({ErrorCode::Io, "read failed", {path, 0, ""}});
    return std::move(ss).str();
}

}  // namespace mapp::ml
