/**
 * @file
 * A bagged random-forest regressor over DecisionTreeRegressor — an
 * extension beyond the paper's single tree, used by the ablation benches
 * to check whether ensembling helps on this small, structured dataset.
 */

#ifndef MAPP_ML_RANDOM_FOREST_H
#define MAPP_ML_RANDOM_FOREST_H

#include <span>
#include <vector>

#include "ml/decision_tree.h"

namespace mapp::ml {

/** Random-forest hyper-parameters. */
struct RandomForestParams
{
    int numTrees = 30;
    DecisionTreeParams tree;
    double sampleFraction = 1.0;  ///< bootstrap sample size fraction
    std::uint64_t seed = 42;
};

/**
 * Mean-aggregated ensemble of CART trees on bootstrap samples.
 *
 * Each tree's bootstrap sample is drawn from an RNG stream derived
 * only from (seed, tree index), so trees fit concurrently on the
 * thread pool produce exactly the forest a serial fit would.
 */
class RandomForestRegressor
{
  public:
    explicit RandomForestRegressor(RandomForestParams params = {})
        : params_(params)
    {
    }

    /** Fit the ensemble (trees in parallel). @throws FatalError on
     *  empty data. */
    void fit(const Dataset& data);

    /** Predict one sample (mean over trees). */
    double predict(std::span<const double> x) const;

    /** Predict all rows. */
    std::vector<double> predict(const Dataset& data) const;

    std::size_t treeCount() const { return trees_.size(); }
    bool trained() const { return !trees_.empty(); }

    /** The hyper-parameters the forest was constructed with. */
    const RandomForestParams& params() const { return params_; }

    /**
     * Reconstruct a trained forest from already-reconstructed trees
     * (the model-deserialization path). @throws FatalError if @p trees
     * is empty or any tree is untrained.
     */
    static RandomForestRegressor fromTrees(
        std::vector<DecisionTreeRegressor> trees,
        RandomForestParams params = {});

    /** The fitted trees (read-only; used by the compiled engine). */
    const std::vector<DecisionTreeRegressor>& trees() const
    {
        return trees_;
    }

  private:
    RandomForestParams params_;
    std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace mapp::ml

#endif  // MAPP_ML_RANDOM_FOREST_H
