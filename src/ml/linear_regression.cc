#include "ml/linear_regression.h"

#include "common/log.h"
#include "common/matrix.h"

namespace mapp::ml {

void
LinearRegression::fit(const Dataset& data)
{
    if (data.empty())
        fatal("LinearRegression::fit: empty dataset");
    const std::size_t n = data.size();
    const std::size_t d = data.numFeatures();

    // Augmented design matrix [X | 1] -> solve (A^T A + rI) w = A^T y.
    Matrix ata(d + 1, d + 1);
    std::vector<double> aty(d + 1, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        const auto& row = data.row(r);
        const double y = data.target(r);
        for (std::size_t i = 0; i <= d; ++i) {
            const double xi = i < d ? row[i] : 1.0;
            aty[i] += xi * y;
            for (std::size_t j = 0; j <= d; ++j) {
                const double xj = j < d ? row[j] : 1.0;
                ata(i, j) += xi * xj;
            }
        }
    }
    for (std::size_t i = 0; i <= d; ++i)
        ata(i, i) += params_.ridge;

    const auto sol = linalg::solveSpd(ata, aty);
    w_.assign(sol.begin(), sol.begin() + static_cast<long>(d));
    b_ = sol[d];
    trained_ = true;
}

double
LinearRegression::predict(std::span<const double> x) const
{
    if (!trained_)
        fatal("LinearRegression::predict: model not trained");
    double acc = b_;
    for (std::size_t i = 0; i < w_.size() && i < x.size(); ++i)
        acc += w_[i] * x[i];
    return acc;
}

std::vector<double>
LinearRegression::predict(const Dataset& data) const
{
    std::vector<double> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        out.push_back(predict(data.row(i)));
    return out;
}

}  // namespace mapp::ml
