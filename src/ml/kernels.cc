#include "ml/kernels.h"

#include <algorithm>
#include <cmath>

namespace mapp::ml {

double
kernel(std::span<const double> a, std::span<const double> b,
       const KernelParams& params)
{
    const std::size_t n = std::min(a.size(), b.size());
    switch (params.type) {
      case KernelType::Linear: {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            acc += a[i] * b[i];
        return acc;
      }
      case KernelType::Rbf: {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            acc += (a[i] - b[i]) * (a[i] - b[i]);
        return std::exp(-params.gamma * acc);
      }
      case KernelType::Polynomial: {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            acc += a[i] * b[i];
        return std::pow(params.gamma * acc + params.coef0, params.degree);
      }
    }
    return 0.0;
}

}  // namespace mapp::ml
