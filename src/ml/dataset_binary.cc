#include "ml/dataset_binary.h"

#include <fstream>
#include <sstream>

#include "cache/binary_io.h"
#include "common/error.h"

namespace mapp::ml {

namespace {

constexpr std::string_view kMagic = "MDST";
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::string
datasetToBinary(const Dataset& data)
{
    cache::BinaryWriter w(kMagic, kVersion);
    w.u64(data.numFeatures());
    for (const auto& name : data.featureNames())
        w.str(name);
    w.u64(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        for (double v : data.row(i))
            w.f64(v);
        w.f64(data.target(i));
        w.str(data.group(i));
    }
    return std::move(w).finish();
}

Dataset
datasetFromBinary(const std::string& blob, const std::string& source)
{
    cache::BinaryReader r(blob, source, kMagic, kVersion);
    const std::uint64_t numFeatures = r.u64();
    std::vector<std::string> names;
    names.reserve(numFeatures);
    for (std::uint64_t k = 0; k < numFeatures; ++k)
        names.push_back(r.str());
    Dataset data(std::move(names));
    const std::uint64_t rows = r.u64();
    for (std::uint64_t i = 0; i < rows; ++i) {
        std::vector<double> row(numFeatures);
        for (std::uint64_t k = 0; k < numFeatures; ++k)
            row[k] = r.f64();
        const double target = r.f64();
        std::string group = r.str();
        // addRow re-checks finiteness, so a checksum-surviving NaN
        // still cannot reach a trained model.
        data.addRow(std::move(row), target, std::move(group));
    }
    r.expectEnd();
    return data;
}

void
writeDatasetBinaryFile(const Dataset& data, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        raise({ErrorCode::Io, "cannot open for writing", {path, 0, ""}});
    const std::string blob = datasetToBinary(data);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out)
        raise({ErrorCode::Io, "write failed", {path, 0, ""}});
}

Dataset
readDatasetBinaryFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise({ErrorCode::Io, "cannot open file", {path, 0, ""}});
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        raise({ErrorCode::Io, "read failed", {path, 0, ""}});
    return datasetFromBinary(ss.str(), path);
}

void
hashDataset(cache::Hasher& hasher, const Dataset& data)
{
    hasher.add(static_cast<std::uint64_t>(data.numFeatures()));
    for (const auto& name : data.featureNames())
        hasher.add(std::string_view(name));
    hasher.add(static_cast<std::uint64_t>(data.size()));
    for (std::size_t i = 0; i < data.size(); ++i) {
        hasher.add(std::span<const double>(data.row(i)));
        hasher.add(data.target(i));
        hasher.add(std::string_view(data.group(i)));
    }
}

}  // namespace mapp::ml
