/**
 * @file
 * Regression error metrics. relativeErrorPercent implements the paper's
 * metric: |true - predicted| / true x 100 (Section VI).
 *
 * Every metric rejects NaN/Inf inputs with a FatalError: a non-finite
 * truth or prediction means a corrupt value escaped the validated input
 * boundaries, and averaging it in would silently fabricate a score.
 */

#ifndef MAPP_ML_METRICS_H
#define MAPP_ML_METRICS_H

#include <span>

namespace mapp::ml {

/** Mean squared error (the training loss, Equation 1). */
double meanSquaredError(std::span<const double> truth,
                        std::span<const double> predicted);

/** The paper's relative error for one prediction, in percent. */
double relativeErrorPercent(double truth, double predicted);

/** Mean of the per-point relative errors, in percent. */
double meanRelativeErrorPercent(std::span<const double> truth,
                                std::span<const double> predicted);

/** Coefficient of determination (R^2). */
double r2Score(std::span<const double> truth,
               std::span<const double> predicted);

}  // namespace mapp::ml

#endif  // MAPP_ML_METRICS_H
