#include "ml/svr.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace mapp::ml {

double
SvrRegressor::kernelPlusOne(std::span<const double> a,
                            std::span<const double> b) const
{
    // +1 folds the bias term into the kernel expansion.
    return kernel(a, b, params_.kernel) + 1.0;
}

void
SvrRegressor::fit(const Dataset& data)
{
    if (data.empty())
        fatal("SvrRegressor::fit: empty dataset");
    const std::size_t n = data.size();
    x_ = data.rows();
    beta_.assign(n, 0.0);

    // Precompute the (small) kernel matrix.
    std::vector<double> k(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j <= i; ++j) {
            const double v = kernelPlusOne(x_[i], x_[j]);
            k[i * n + j] = v;
            k[j * n + i] = v;
        }

    // f_i = sum_j beta_j k_ij, maintained incrementally.
    std::vector<double> f(n, 0.0);

    for (int iter = 0; iter < params_.maxIterations; ++iter) {
        double maxDelta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double kii = std::max(k[i * n + i], 1e-12);
            // Residual excluding beta_i's own contribution.
            const double r = data.target(i) - (f[i] - beta_[i] * kii);
            // Soft-threshold by epsilon, clip to the box.
            double next = 0.0;
            if (r > params_.epsilon)
                next = (r - params_.epsilon) / kii;
            else if (r < -params_.epsilon)
                next = (r + params_.epsilon) / kii;
            next = std::clamp(next, -params_.c, params_.c);

            const double delta = next - beta_[i];
            if (delta != 0.0) {
                for (std::size_t j = 0; j < n; ++j)
                    f[j] += delta * k[i * n + j];
                beta_[i] = next;
            }
            maxDelta = std::max(maxDelta, std::abs(delta));
        }
        if (maxDelta < params_.tol)
            break;
    }
}

double
SvrRegressor::predict(std::span<const double> x) const
{
    if (x_.empty())
        fatal("SvrRegressor::predict: model not trained");
    double acc = 0.0;
    for (std::size_t i = 0; i < x_.size(); ++i) {
        if (beta_[i] == 0.0)
            continue;
        acc += beta_[i] * kernelPlusOne(x_[i], x);
    }
    return acc;
}

std::vector<double>
SvrRegressor::predict(const Dataset& data) const
{
    std::vector<double> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        out.push_back(predict(data.row(i)));
    return out;
}

std::size_t
SvrRegressor::supportVectorCount() const
{
    std::size_t count = 0;
    for (double b : beta_)
        if (b != 0.0)
            ++count;
    return count;
}

}  // namespace mapp::ml
