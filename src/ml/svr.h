/**
 * @file
 * Epsilon-insensitive support vector regression, solved by cyclic
 * coordinate descent on the dual difference variables beta_i =
 * alpha_i - alpha*_i in [-C, C], with the bias folded into the kernel
 * (k' = k + 1). Predictions are kernel expansions over the support
 * vectors. This is the competing regressor the paper found ~10x less
 * accurate than the decision tree on its sparse dataset (Section V-D).
 */

#ifndef MAPP_ML_SVR_H
#define MAPP_ML_SVR_H

#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/kernels.h"

namespace mapp::ml {

/** SVR hyper-parameters. */
struct SvrParams
{
    double c = 10.0;         ///< box constraint
    double epsilon = 0.01;   ///< insensitive-tube half width
    int maxIterations = 500; ///< coordinate-descent sweeps
    double tol = 1e-5;       ///< max coordinate change to stop
    KernelParams kernel;
};

/** Epsilon-SVR regressor. */
class SvrRegressor
{
  public:
    explicit SvrRegressor(SvrParams params = {}) : params_(params) {}

    /** Fit to a dataset. @throws FatalError on empty data. */
    void fit(const Dataset& data);

    /** Predict one sample. */
    double predict(std::span<const double> x) const;

    /** Predict all rows. */
    std::vector<double> predict(const Dataset& data) const;

    /** Number of support vectors (nonzero dual coefficients). */
    std::size_t supportVectorCount() const;

    bool trained() const { return !x_.empty(); }

  private:
    double kernelPlusOne(std::span<const double> a,
                         std::span<const double> b) const;

    SvrParams params_;
    std::vector<std::vector<double>> x_;  ///< training samples
    std::vector<double> beta_;            ///< dual coefficients
};

}  // namespace mapp::ml

#endif  // MAPP_ML_SVR_H
