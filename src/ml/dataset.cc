#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.h"

namespace mapp::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : names_(std::move(feature_names))
{
}

void
Dataset::addRow(std::vector<double> features, double target,
                std::string group)
{
    if (features.size() != names_.size())
        fatal("Dataset::addRow: feature count mismatch");
    for (std::size_t f = 0; f < features.size(); ++f) {
        if (!std::isfinite(features[f]))
            fatal("Dataset::addRow: non-finite value for feature '" +
                  names_[f] + "'");
    }
    if (!std::isfinite(target))
        fatal("Dataset::addRow: non-finite target");
    rows_.push_back(std::move(features));
    targets_.push_back(target);
    groups_.push_back(std::move(group));
}

std::vector<double>
Dataset::toRowMajor() const
{
    std::vector<double> flat;
    flat.reserve(rows_.size() * names_.size());
    for (const auto& row : rows_)
        flat.insert(flat.end(), row.begin(), row.end());
    return flat;
}

int
Dataset::featureIndex(const std::string& name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<int>(i);
    return -1;
}

std::vector<double>
Dataset::column(std::size_t feature) const
{
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& row : rows_)
        out.push_back(row[feature]);
    return out;
}

std::vector<std::string>
Dataset::distinctGroups() const
{
    std::vector<std::string> out;
    for (const auto& g : groups_)
        if (std::find(out.begin(), out.end(), g) == out.end())
            out.push_back(g);
    return out;
}

Dataset
Dataset::selectFeatures(const std::vector<std::string>& names) const
{
    std::vector<std::size_t> cols;
    cols.reserve(names.size());
    for (const auto& name : names) {
        const int idx = featureIndex(name);
        if (idx < 0)
            fatal("Dataset::selectFeatures: unknown feature " + name);
        cols.push_back(static_cast<std::size_t>(idx));
    }

    Dataset out(names);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        std::vector<double> row;
        row.reserve(cols.size());
        for (std::size_t c : cols)
            row.push_back(rows_[r][c]);
        out.addRow(std::move(row), targets_[r], groups_[r]);
    }
    return out;
}

Dataset
Dataset::subset(const std::vector<std::size_t>& indices) const
{
    Dataset out(names_);
    for (std::size_t i : indices) {
        if (i >= size())
            fatal("Dataset::subset: index out of range");
        out.addRow(rows_[i], targets_[i], groups_[i]);
    }
    return out;
}

std::pair<Dataset, Dataset>
Dataset::trainTestSplit(double test_fraction, Rng& rng) const
{
    std::vector<std::size_t> order(size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);

    const auto testCount = static_cast<std::size_t>(
        static_cast<double>(size()) * test_fraction);
    std::vector<std::size_t> testIdx(order.begin(),
                                     order.begin() +
                                         static_cast<long>(testCount));
    std::vector<std::size_t> trainIdx(
        order.begin() + static_cast<long>(testCount), order.end());
    // Keep row order stable within each side for reproducibility.
    std::sort(testIdx.begin(), testIdx.end());
    std::sort(trainIdx.begin(), trainIdx.end());
    return {subset(trainIdx), subset(testIdx)};
}

std::pair<Dataset, Dataset>
Dataset::splitOutGroup(const std::string& group) const
{
    std::vector<std::size_t> trainIdx;
    std::vector<std::size_t> testIdx;
    for (std::size_t i = 0; i < size(); ++i) {
        if (groups_[i] == group)
            testIdx.push_back(i);
        else
            trainIdx.push_back(i);
    }
    return {subset(trainIdx), subset(testIdx)};
}

}  // namespace mapp::ml
