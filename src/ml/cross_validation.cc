#include "ml/cross_validation.h"

#include <numeric>

#include "common/log.h"
#include "common/parallel.h"

namespace mapp::ml {

double
CrossValidationResult::meanRelativeError() const
{
    if (folds.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto& fold : folds)
        acc += fold.meanRelativeError;
    return acc / static_cast<double>(folds.size());
}

namespace {

FoldResult
evaluateFold(const std::string& label, const Dataset& train,
             const Dataset& test, const FitPredictFn& fit_predict)
{
    FoldResult fold;
    fold.label = label;
    fold.testPoints = test.size();
    if (train.empty() || test.empty())
        return fold;
    const auto predictions = fit_predict(train, test);
    fold.meanRelativeError =
        meanRelativeErrorPercent(test.targets(), predictions);
    fold.mse = meanSquaredError(test.targets(), predictions);
    return fold;
}

}  // namespace

CrossValidationResult
leaveOneGroupOut(const Dataset& data, const FitPredictFn& fit_predict)
{
    // Folds are independent (each trains a fresh model on its own
    // split), so they run concurrently; fold i writes only slot i and
    // the result order matches the serial loop.
    const auto groups = data.distinctGroups();
    CrossValidationResult result;
    result.folds.resize(groups.size());
    parallel::parallelFor(groups.size(), [&](std::size_t i) {
        auto [train, test] = data.splitOutGroup(groups[i]);
        result.folds[i] = evaluateFold(groups[i], train, test,
                                       fit_predict);
    });
    return result;
}

CrossValidationResult
kFold(const Dataset& data, int folds, Rng& rng,
      const FitPredictFn& fit_predict)
{
    if (folds < 2)
        fatal("kFold: need at least 2 folds");

    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);

    CrossValidationResult result;
    result.folds.resize(static_cast<std::size_t>(folds));
    parallel::parallelFor(
        static_cast<std::size_t>(folds), [&](std::size_t fi) {
            const int f = static_cast<int>(fi);
            std::vector<std::size_t> trainIdx;
            std::vector<std::size_t> testIdx;
            for (std::size_t i = 0; i < order.size(); ++i) {
                if (static_cast<int>(
                        i % static_cast<std::size_t>(folds)) == f)
                    testIdx.push_back(order[i]);
                else
                    trainIdx.push_back(order[i]);
            }
            result.folds[fi] = evaluateFold(
                "fold" + std::to_string(f), data.subset(trainIdx),
                data.subset(testIdx), fit_predict);
        });
    return result;
}

}  // namespace mapp::ml
