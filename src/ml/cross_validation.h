/**
 * @file
 * Cross-validation drivers: leave-one-group-out (the paper's LOOCV,
 * where every data point of the left-out benchmark is held out
 * together, Section V-D.1) and k-fold, both generic over any regressor
 * with fit(Dataset)/predict(Dataset).
 */

#ifndef MAPP_ML_CROSS_VALIDATION_H
#define MAPP_ML_CROSS_VALIDATION_H

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/metrics.h"

namespace mapp::ml {

/** Errors of one cross-validation fold. */
struct FoldResult
{
    std::string label;          ///< group name or fold index
    double meanRelativeError = 0.0;  ///< percent
    double mse = 0.0;
    std::size_t testPoints = 0;
};

/** Aggregate cross-validation outcome. */
struct CrossValidationResult
{
    std::vector<FoldResult> folds;

    /** Unweighted mean of the folds' relative errors (percent). */
    double meanRelativeError() const;
};

/**
 * A regressor factory + fit + predict bundle, so the CV drivers stay
 * model-agnostic. fitPredict must train on the first dataset and return
 * predictions for the second.
 *
 * The CV drivers evaluate folds concurrently on the thread pool, so
 * fit_predict must be safe to call from several threads at once — in
 * practice: construct a fresh model inside the callback instead of
 * reusing one captured by reference.
 */
using FitPredictFn =
    std::function<std::vector<double>(const Dataset& train,
                                      const Dataset& test)>;

/**
 * Leave-one-group-out CV: for every distinct group, hold out all of its
 * rows, train on the rest, evaluate on the held-out rows.
 */
CrossValidationResult leaveOneGroupOut(const Dataset& data,
                                       const FitPredictFn& fit_predict);

/** Classic k-fold CV with a deterministic shuffle. */
CrossValidationResult kFold(const Dataset& data, int folds, Rng& rng,
                            const FitPredictFn& fit_predict);

}  // namespace mapp::ml

#endif  // MAPP_ML_CROSS_VALIDATION_H
