/**
 * @file
 * Kernel functions for support vector regression: the similarity metric
 * in the (possibly transformed) feature space (Section II-B.2).
 */

#ifndef MAPP_ML_KERNELS_H
#define MAPP_ML_KERNELS_H

#include <span>

namespace mapp::ml {

/** Supported kernel families. */
enum class KernelType { Linear, Rbf, Polynomial };

/** Kernel configuration. */
struct KernelParams
{
    KernelType type = KernelType::Rbf;
    double gamma = 0.5;   ///< RBF width / polynomial scale
    double coef0 = 1.0;   ///< polynomial offset
    int degree = 3;       ///< polynomial degree
};

/** Evaluate k(a, b) under the given kernel. */
double kernel(std::span<const double> a, std::span<const double> b,
              const KernelParams& params);

}  // namespace mapp::ml

#endif  // MAPP_ML_KERNELS_H
