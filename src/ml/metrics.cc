#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/simd.h"
#include "common/stats.h"

namespace mapp::ml {

namespace {

void
requireFinite(std::span<const double> truth,
              std::span<const double> predicted, std::size_t n,
              const char* where)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(truth[i]) || !std::isfinite(predicted[i]))
            fatal(std::string(where) + ": non-finite value at index " +
                  std::to_string(i));
    }
}

}  // namespace

double
meanSquaredError(std::span<const double> truth,
                 std::span<const double> predicted)
{
    const std::size_t n = std::min(truth.size(), predicted.size());
    if (n == 0)
        return 0.0;
    requireFinite(truth, predicted, n, "ml::meanSquaredError");
    const double acc =
        simd::kernels().sumSquaredDiff(truth.data(), predicted.data(),
                                       n);
    return acc / static_cast<double>(n);
}

double
relativeErrorPercent(double truth, double predicted)
{
    if (!std::isfinite(truth) || !std::isfinite(predicted))
        fatal("ml::relativeErrorPercent: non-finite input");
    const double denom = std::abs(truth) > 1e-300 ? std::abs(truth) : 1e-300;
    return std::abs(truth - predicted) / denom * 100.0;
}

double
meanRelativeErrorPercent(std::span<const double> truth,
                         std::span<const double> predicted)
{
    const std::size_t n = std::min(truth.size(), predicted.size());
    if (n == 0)
        return 0.0;
    // Validate first (keeping the fail-fast contract), then hand the
    // finite data to the elementwise-vectorized reduction kernel.
    requireFinite(truth, predicted, n, "ml::meanRelativeErrorPercent");
    const double acc = simd::kernels().sumAbsRelErrPct(
        truth.data(), predicted.data(), n);
    return acc / static_cast<double>(n);
}

double
r2Score(std::span<const double> truth, std::span<const double> predicted)
{
    const std::size_t n = std::min(truth.size(), predicted.size());
    if (n == 0)
        return 0.0;
    requireFinite(truth, predicted, n, "ml::r2Score");
    const double mean = stats::mean(truth.subspan(0, n));
    const simd::Kernels& k = simd::kernels();
    const double ssRes =
        k.sumSquaredDiff(truth.data(), predicted.data(), n);
    const double ssTot = k.sumSquaredDev(truth.data(), n, mean);
    if (ssTot <= 0.0)
        return ssRes <= 0.0 ? 1.0 : 0.0;
    return 1.0 - ssRes / ssTot;
}

}  // namespace mapp::ml
