/**
 * @file
 * ml::Dataset binary serialization — the artifact-cache format for
 * collected campaigns. Versioned "MDST" frame: feature names, then one
 * packed little-endian f64 block per row plus its target and group,
 * trailing FNV checksum. Round-trips bit-identically (doubles are
 * stored by bit pattern) and loads far faster than the strict CSV
 * parse of dataset_io.h; corruption surfaces as a located
 * mapp::InputError, never a poisoned model.
 */

#ifndef MAPP_ML_DATASET_BINARY_H
#define MAPP_ML_DATASET_BINARY_H

#include <string>

#include "cache/hash.h"
#include "ml/dataset.h"

namespace mapp::ml {

/** Serialize a dataset into a checksummed binary blob. */
std::string datasetToBinary(const Dataset& data);

/**
 * Parse a dataset from a blob produced by datasetToBinary.
 * @param source label for error messages (e.g. the blob's path)
 * @throws InputError on a short/garbled/wrong-magic/wrong-version blob;
 *         NaN/Inf cells are rejected by Dataset::addRow as usual.
 */
Dataset datasetFromBinary(const std::string& blob,
                          const std::string& source = "");

/** Write a dataset to a binary file. @throws InputError on I/O failure. */
void writeDatasetBinaryFile(const Dataset& data, const std::string& path);

/** Read a binary dataset file. @throws InputError on failure. */
Dataset readDatasetBinaryFile(const std::string& path);

/**
 * Fold a dataset's full content (names, rows, targets, groups) into a
 * cache-key hasher — the content-addressing step for artifacts derived
 * from a dataset (e.g. models trained on it).
 */
void hashDataset(cache::Hasher& hasher, const Dataset& data);

}  // namespace mapp::ml

#endif  // MAPP_ML_DATASET_BINARY_H
