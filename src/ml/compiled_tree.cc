#include "ml/compiled_tree.h"

#include <algorithm>

#include "common/log.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "obs/metrics.h"

namespace mapp::ml {

namespace {

/**
 * Rows kept in flight per walk block — pinned to the kernel layer's
 * block size (the chunk drivers never hand simd::Kernels::walk more
 * rows than this).
 */
constexpr std::size_t kBlockRows = simd::kWalkBlockRows;

/**
 * Rows per parallelFor task for a SINGLE-tree batch. Measurably larger
 * than the forest chunk on purpose: a shallow single tree finishes a
 * 32-row block in a few dozen compare steps, so with 256-row chunks
 * the per-task fixed costs (task dispatch, kernel-table load, block
 * setup/teardown) are a visible fraction of the work — that overhead
 * ratio is why bench.inference.tree.batch.speedup sat near 1.17x while
 * the 50-tree forest (50x more walk work per row) reached ~5x. 1024
 * rows amortizes the fixed costs ~4x further while still splitting
 * campaign-scale batches (thousands of rows) across worker lanes.
 */
constexpr std::size_t kTreeChunkRows = 1024;

/**
 * Rows per parallelFor task for a FOREST batch. Smaller than the
 * single-tree chunk: each chunk walks EVERY tree, so 256 rows already
 * carries enough work to bury task overhead, finer granularity
 * load-balances better across lanes, and the per-block accumulator +
 * row slab stay resident in L1/L2 while all trees stream over them.
 */
constexpr std::size_t kForestChunkRows = 256;

void
checkBatchShape(const char* who, std::size_t flat, std::size_t n_features,
                std::size_t n_rows)
{
    if (flat != n_features * n_rows)
        fatal(std::string(who) +
              ": rowMajor size does not equal nFeatures * out size");
}

/** Packed-word capacity guard (see compiled_tree.h): the 25/25/14-bit
 * node word cannot represent indices or feature ids beyond these, and
 * truncating silently would corrupt every prediction. */
void
checkPackable(const char* who, std::size_t total_nodes,
              std::int32_t max_feature)
{
    if (total_nodes > simd::PackedNode::kMaxNodes)
        fatal(std::string(who) +
              ": node count exceeds the packed-walk capacity of 2^25");
    if (static_cast<std::size_t>(max_feature) >=
        simd::PackedNode::kMaxFeatures)
        fatal(std::string(who) +
              ": feature id exceeds the packed-walk capacity of 2^14");
}

void
countBatch(std::size_t rows)
{
    // Cached references: the registry owns its counters for the
    // process lifetime, and a string-keyed map lookup per batch would
    // cost more than a small batch's entire traversal.
    static obs::Counter& batches =
        obs::defaultRegistry().counter("ml.inference.batches");
    static obs::Counter& batchRows =
        obs::defaultRegistry().counter("ml.inference.batch_rows");
    batches.add(1);
    batchRows.add(rows);
}

/**
 * One tree-batch chunk: rows [begin, end) through a single tree.
 * Deliberately noinline — the kernel's block loop gets its own
 * register allocation instead of being inlined into whichever caller
 * dispatches it (inlining into predictBatch measurably degrades the
 * unrolled walk's codegen).
 */
__attribute__((noinline)) void
treeChunk(const simd::Kernels& k, const simd::TreeNodes& nodes,
          int steps, const double* row_major, std::size_t n_features,
          double* out, std::size_t begin, std::size_t end)
{
    double buf[kBlockRows];
    for (std::size_t r0 = begin; r0 < end; r0 += kBlockRows) {
        std::size_t count = end - r0;
        std::size_t skip = 0;
        if (count > kBlockRows) {
            count = kBlockRows;
        } else if (count < kBlockRows && end - begin >= kBlockRows) {
            // Partial final block with enough history in this chunk:
            // slide back to a full block and re-walk a few rows.
            // Predictions are deterministic and every tier is
            // bit-identical, so the overlapped slots are rewritten
            // with identical values, and the overlap never leaves
            // [begin, end) — no cross-chunk writes.
            skip = kBlockRows - count;
            r0 -= skip;
            count = kBlockRows;
        }
        const double* rows = row_major + r0 * n_features;
        if (skip == 0) {
            k.walk(nodes, 0, steps, rows, n_features, count, out + r0,
                   false);
        } else {
            k.walk(nodes, 0, steps, rows, n_features, count, buf,
                   false);
            for (std::size_t i = skip; i < count; ++i)
                out[r0 + i] = buf[i];
        }
    }
}

/** One forest-batch chunk: rows [begin, end) through every tree,
 * accumulating per-row sums in tree order (bit-identical to the
 * reference per-row ensemble walk). Noinline for the same reason as
 * treeChunk. */
__attribute__((noinline)) void
forestChunk(const simd::Kernels& k, const simd::TreeNodes& nodes,
            const std::int32_t* roots, const int* steps,
            std::size_t n_trees, const double* row_major,
            std::size_t n_features, double* out, std::size_t begin,
            std::size_t end)
{
    double acc[kBlockRows];
    const auto divisor = static_cast<double>(n_trees);
    for (std::size_t r0 = begin; r0 < end; r0 += kBlockRows) {
        std::size_t count = end - r0;
        std::size_t skip = 0;
        if (count > kBlockRows) {
            count = kBlockRows;
        } else if (count < kBlockRows && end - begin >= kBlockRows) {
            // Same backward overlap as treeChunk: the accumulator is
            // per-block, so re-walking a few already-written rows just
            // recomputes identical sums — only the out writes skip the
            // overlapped prefix.
            skip = kBlockRows - count;
            r0 -= skip;
            count = kBlockRows;
        }
        const double* rows = row_major + r0 * n_features;
        for (std::size_t i = 0; i < count; ++i)
            acc[i] = 0.0;
        // Trees outer, rows inner: each tree's records stay hot across
        // the block while every row still sums in tree order.
        for (std::size_t t = 0; t < n_trees; ++t)
            k.walk(nodes, roots[t], steps[t], rows, n_features, count,
                   acc, true);
        for (std::size_t i = skip; i < count; ++i)
            out[r0 + i] = acc[i] / divisor;
    }
}

}  // namespace

CompiledTree::CompiledTree(const DecisionTreeRegressor& tree)
{
    if (!tree.trained())
        fatal("CompiledTree: source tree not trained");
    const std::size_t n = tree.nodeCount();
    feature_.reserve(n);
    left_.reserve(n);
    right_.reserve(n);
    threshold_.reserve(n);
    kids_.reserve(2 * n);
    packed_.reserve(n);
    std::int32_t maxFeature = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto v = tree.nodeView(i);
        if (v.leaf) {
            feature_.push_back(0);
            threshold_.push_back(v.value);
            left_.push_back(static_cast<std::int32_t>(i));
            right_.push_back(static_cast<std::int32_t>(i));
        } else {
            feature_.push_back(v.feature);
            threshold_.push_back(v.threshold);
            left_.push_back(v.left);
            right_.push_back(v.right);
            maxFeature = std::max(maxFeature, v.feature);
        }
        kids_.push_back(left_.back());
        kids_.push_back(right_.back());
        packed_.push_back(simd::PackedNode::pack(
            threshold_.back(),
            static_cast<std::uint32_t>(feature_.back()),
            static_cast<std::uint32_t>(left_.back()),
            static_cast<std::uint32_t>(right_.back())));
    }
    checkPackable("CompiledTree", n, maxFeature);
    steps_ = tree.depth();
}

double
CompiledTree::predict(std::span<const double> x) const
{
    if (!compiled())
        fatal("CompiledTree::predict: not compiled");
    std::int32_t cur = 0;
    while (left_[static_cast<std::size_t>(cur)] != cur) {
        const auto c = static_cast<std::size_t>(cur);
        cur = x[static_cast<std::size_t>(feature_[c])] <= threshold_[c]
                  ? left_[c]
                  : right_[c];
    }
    return threshold_[static_cast<std::size_t>(cur)];
}

std::int32_t
CompiledTree::predictLeaf(std::span<const double> x) const
{
    if (!compiled())
        fatal("CompiledTree::predictLeaf: not compiled");
    std::int32_t cur = 0;
    while (left_[static_cast<std::size_t>(cur)] != cur) {
        const auto c = static_cast<std::size_t>(cur);
        cur = x[static_cast<std::size_t>(feature_[c])] <= threshold_[c]
                  ? left_[c]
                  : right_[c];
    }
    return cur;
}

void
CompiledTree::predictBatch(std::span<const double> rowMajor,
                           std::size_t nFeatures,
                           std::span<double> out) const
{
    if (!compiled())
        fatal("CompiledTree::predictBatch: not compiled");
    const std::size_t nRows = out.size();
    checkBatchShape("CompiledTree::predictBatch", rowMajor.size(),
                    nFeatures, nRows);
    if (nRows == 0)
        return;
    countBatch(nRows);

    // Resolve the kernel table once per batch, not per block: after
    // first use this is one atomic load, but the hot loop should not
    // even pay that.
    const simd::Kernels& k = simd::kernels();
    const simd::TreeNodes nodes{feature_.data(), threshold_.data(),
                                kids_.data(), packed_.data()};
    const std::size_t nChunks =
        (nRows + kTreeChunkRows - 1) / kTreeChunkRows;
    parallel::parallelFor(nChunks, [&](std::size_t chunk) {
        const std::size_t begin = chunk * kTreeChunkRows;
        const std::size_t end =
            std::min(begin + kTreeChunkRows, nRows);
        treeChunk(k, nodes, steps_, rowMajor.data(), nFeatures,
                  out.data(), begin, end);
    });
}

std::vector<double>
CompiledTree::predict(const Dataset& data) const
{
    const auto flat = data.toRowMajor();
    std::vector<double> out(data.size());
    predictBatch(flat, data.numFeatures(), out);
    return out;
}

CompiledForest::CompiledForest(const RandomForestRegressor& forest)
{
    if (!forest.trained())
        fatal("CompiledForest: source forest not trained");
    const auto& trees = forest.trees();
    std::size_t total = 0;
    for (const auto& tree : trees)
        total += tree.nodeCount();
    feature_.reserve(total);
    left_.reserve(total);
    right_.reserve(total);
    threshold_.reserve(total);
    kids_.reserve(2 * total);
    packed_.reserve(total);
    roots_.reserve(trees.size());
    steps_.reserve(trees.size());
    std::int32_t maxFeature = 0;
    for (const auto& tree : trees) {
        const auto base =
            static_cast<std::int32_t>(feature_.size());
        roots_.push_back(base);
        steps_.push_back(tree.depth());
        const std::size_t n = tree.nodeCount();
        for (std::size_t i = 0; i < n; ++i) {
            const auto v = tree.nodeView(i);
            if (v.leaf) {
                feature_.push_back(0);
                threshold_.push_back(v.value);
                left_.push_back(base + static_cast<std::int32_t>(i));
                right_.push_back(base + static_cast<std::int32_t>(i));
            } else {
                feature_.push_back(v.feature);
                threshold_.push_back(v.threshold);
                left_.push_back(base + v.left);
                right_.push_back(base + v.right);
                maxFeature = std::max(maxFeature, v.feature);
            }
            kids_.push_back(left_.back());
            kids_.push_back(right_.back());
            packed_.push_back(simd::PackedNode::pack(
                threshold_.back(),
                static_cast<std::uint32_t>(feature_.back()),
                static_cast<std::uint32_t>(left_.back()),
                static_cast<std::uint32_t>(right_.back())));
        }
    }
    checkPackable("CompiledForest", total, maxFeature);
}

double
CompiledForest::predict(std::span<const double> x) const
{
    if (!compiled())
        fatal("CompiledForest::predict: not compiled");
    double acc = 0.0;
    for (std::int32_t root : roots_) {
        std::int32_t cur = root;
        while (left_[static_cast<std::size_t>(cur)] != cur) {
            const auto c = static_cast<std::size_t>(cur);
            cur = x[static_cast<std::size_t>(feature_[c])] <=
                          threshold_[c]
                      ? left_[c]
                      : right_[c];
        }
        acc += threshold_[static_cast<std::size_t>(cur)];
    }
    return acc / static_cast<double>(roots_.size());
}

double
CompiledForest::predictVotes(std::span<const double> x,
                             std::vector<double>& votes) const
{
    if (!compiled())
        fatal("CompiledForest::predictVotes: not compiled");
    votes.resize(roots_.size());
    double acc = 0.0;
    for (std::size_t t = 0; t < roots_.size(); ++t) {
        std::int32_t cur = roots_[t];
        while (left_[static_cast<std::size_t>(cur)] != cur) {
            const auto c = static_cast<std::size_t>(cur);
            cur = x[static_cast<std::size_t>(feature_[c])] <=
                          threshold_[c]
                      ? left_[c]
                      : right_[c];
        }
        votes[t] = threshold_[static_cast<std::size_t>(cur)];
        acc += votes[t];
    }
    return acc / static_cast<double>(roots_.size());
}

void
CompiledForest::predictBatch(std::span<const double> rowMajor,
                             std::size_t nFeatures,
                             std::span<double> out) const
{
    if (!compiled())
        fatal("CompiledForest::predictBatch: not compiled");
    const std::size_t nRows = out.size();
    checkBatchShape("CompiledForest::predictBatch", rowMajor.size(),
                    nFeatures, nRows);
    if (nRows == 0)
        return;
    countBatch(nRows);

    const simd::Kernels& k = simd::kernels();
    const simd::TreeNodes nodes{feature_.data(), threshold_.data(),
                                kids_.data(), packed_.data()};
    const std::size_t nChunks =
        (nRows + kForestChunkRows - 1) / kForestChunkRows;
    parallel::parallelFor(nChunks, [&](std::size_t chunk) {
        const std::size_t begin = chunk * kForestChunkRows;
        const std::size_t end =
            std::min(begin + kForestChunkRows, nRows);
        forestChunk(k, nodes, roots_.data(), steps_.data(),
                    roots_.size(), rowMajor.data(), nFeatures,
                    out.data(), begin, end);
    });
}

std::vector<double>
CompiledForest::predict(const Dataset& data) const
{
    const auto flat = data.toRowMajor();
    std::vector<double> out(data.size());
    predictBatch(flat, data.numFeatures(), out);
    return out;
}

}  // namespace mapp::ml
