#include "ml/compiled_tree.h"

#include <algorithm>

#include "common/log.h"
#include "common/parallel.h"
#include "obs/metrics.h"

namespace mapp::ml {

namespace {

/** Rows kept in flight per interleaved traversal block. */
constexpr std::size_t kBlockRows = 32;

/**
 * Steps the fixed-step walk runs between "is every row at a leaf?"
 * probes. Most rows exit well before the tree's depth bound; probing
 * every few steps recovers that slack for the price of one
 * well-predicted branch per probe (taken once, at the end).
 */
constexpr int kStepsPerProbe = 3;

/** Rows per parallelFor task when a batch is split across lanes. */
constexpr std::size_t kChunkRows = 256;

/**
 * Advance @p RowCount rows through one tree for a fixed @p steps
 * comparisons, leaving each row's final node index in @p cur. Rows
 * that reach a leaf early self-loop on it (the sentinel encoding), so
 * there is no per-step termination branch and the RowCount dependent
 * load chains proceed in parallel.
 *
 * The pointers are `__restrict__` on purpose: `cur` shares the
 * int32_t type with the node arrays, and without the no-alias promise
 * the compiler must reload node data after every row-state store —
 * which serializes the row chains and erases the whole point of the
 * interleaving. The walk advances a LOCAL state array `c` and copies
 * it to `cur` only at the end: a local array with constant indices
 * (RowCount is a template parameter and the loops unroll completely)
 * is register-promotable, so the per-step state update costs no
 * load/store traffic on a kernel that is otherwise load-port bound.
 *
 * The split decision is the indexed load kids[2c + !(x <= t)]: the
 * comparison materializes as a SETcc feeding an address, never a
 * conditional branch (data-dependent splits mispredict ~50% and a
 * mispredict per level would cost more than the whole level). The
 * !(x <= t) form keeps NaN semantics identical to the oracle walk
 * (NaN fails <=, so it routes right in both engines).
 */
template <std::size_t RowCount>
__attribute__((noinline)) void
walkBlock(const std::int32_t* __restrict__ feature,
          const double* __restrict__ threshold,
          const std::int32_t* __restrict__ kids, std::int32_t root,
          int steps, const double* __restrict__ rows,
          std::size_t n_features, double* __restrict__ out,
          bool accumulate)
{
    std::int32_t c[RowCount];
    for (std::size_t i = 0; i < RowCount; ++i)
        c[i] = root;
    for (int s = 0; s < steps;) {
        const int stop = std::min(steps, s + kStepsPerProbe - 1);
        for (; s < stop; ++s) {
            for (std::size_t i = 0; i < RowCount; ++i) {
                const auto n = static_cast<std::size_t>(c[i]);
                const double x =
                    rows[i * n_features +
                         static_cast<std::size_t>(feature[n])];
                const auto go =
                    static_cast<std::size_t>(!(x <= threshold[n]));
                c[i] = kids[2 * n + go];
            }
        }
        if (s >= steps)
            break;
        // Probe step: same walk, but fold "did any row move?" into
        // the step itself (a leaf self-loops, so next == c iff the
        // row is done) — the check reuses values already in flight
        // instead of a separate pass over the block.
        bool done = true;
        for (std::size_t i = 0; i < RowCount; ++i) {
            const auto n = static_cast<std::size_t>(c[i]);
            const double x =
                rows[i * n_features +
                     static_cast<std::size_t>(feature[n])];
            const auto go =
                static_cast<std::size_t>(!(x <= threshold[n]));
            const std::int32_t next = kids[2 * n + go];
            done &= next == c[i];
            c[i] = next;
        }
        ++s;
        if (done)
            break;  // self-loop sentinel: extra steps are no-ops
    }
    // Fused output: the final leaf values leave the walk directly —
    // no row-state array crosses the call boundary, so the caller
    // never re-loads what the walk just stored.
    if (accumulate)
        for (std::size_t i = 0; i < RowCount; ++i)
            out[i] += threshold[static_cast<std::size_t>(c[i])];
    else
        for (std::size_t i = 0; i < RowCount; ++i)
            out[i] = threshold[static_cast<std::size_t>(c[i])];
}

/** Runtime-count tail variant for the final few rows. */
__attribute__((noinline)) void
walkBlockTail(const std::int32_t* __restrict__ feature,
              const double* __restrict__ threshold,
              const std::int32_t* __restrict__ kids, std::int32_t root,
              int steps, const double* __restrict__ rows,
              std::size_t n_features, std::size_t row_count,
              double* __restrict__ out, bool accumulate)
{
    std::int32_t cur[kBlockRows];
    for (std::size_t i = 0; i < row_count; ++i)
        cur[i] = root;
    for (int s = 0; s < steps;) {
        const int stop = std::min(steps, s + kStepsPerProbe - 1);
        for (; s < stop; ++s) {
            for (std::size_t i = 0; i < row_count; ++i) {
                const auto n = static_cast<std::size_t>(cur[i]);
                const double x =
                    rows[i * n_features +
                         static_cast<std::size_t>(feature[n])];
                const auto go =
                    static_cast<std::size_t>(!(x <= threshold[n]));
                cur[i] = kids[2 * n + go];
            }
        }
        if (s >= steps)
            break;
        bool done = true;
        for (std::size_t i = 0; i < row_count; ++i) {
            const auto n = static_cast<std::size_t>(cur[i]);
            const double x =
                rows[i * n_features +
                     static_cast<std::size_t>(feature[n])];
            const auto go =
                static_cast<std::size_t>(!(x <= threshold[n]));
            const std::int32_t next = kids[2 * n + go];
            done &= next == cur[i];
            cur[i] = next;
        }
        ++s;
        if (done)
            break;  // self-loop sentinel: extra steps are no-ops
    }
    if (accumulate)
        for (std::size_t i = 0; i < row_count; ++i)
            out[i] += threshold[static_cast<std::size_t>(cur[i])];
    else
        for (std::size_t i = 0; i < row_count; ++i)
            out[i] = threshold[static_cast<std::size_t>(cur[i])];
}

void
checkBatchShape(const char* who, std::size_t flat, std::size_t n_features,
                std::size_t n_rows)
{
    if (flat != n_features * n_rows)
        fatal(std::string(who) +
              ": rowMajor size does not equal nFeatures * out size");
}

void
countBatch(std::size_t rows)
{
    // Cached references: the registry owns its counters for the
    // process lifetime, and a string-keyed map lookup per batch would
    // cost more than a small batch's entire traversal.
    static obs::Counter& batches =
        obs::defaultRegistry().counter("ml.inference.batches");
    static obs::Counter& batchRows =
        obs::defaultRegistry().counter("ml.inference.batch_rows");
    batches.add(1);
    batchRows.add(rows);
}

/**
 * Walk @p count (<= kBlockRows) rows through one tree, cascading down
 * power-of-two instantiations so nearly every row runs fully unrolled
 * codegen; only a <4-row remainder takes the rolled tail. A partial
 * final block would otherwise put up to kBlockRows-1 rows — a third of
 * a campaign-sized batch — through the slow path.
 */
inline void
walkCascade(const std::int32_t* feature, const double* threshold,
            const std::int32_t* kids, std::int32_t root, int steps,
            const double* rows, std::size_t n_features,
            std::size_t count, double* out, bool accumulate)
{
    std::size_t done = 0;
    while (count - done >= 32) {
        walkBlock<32>(feature, threshold, kids, root, steps,
                      rows + done * n_features, n_features, out + done,
                      accumulate);
        done += 32;
    }
    if (count - done >= 16) {
        walkBlock<16>(feature, threshold, kids, root, steps,
                      rows + done * n_features, n_features, out + done,
                      accumulate);
        done += 16;
    }
    if (count - done >= 8) {
        walkBlock<8>(feature, threshold, kids, root, steps,
                     rows + done * n_features, n_features, out + done,
                     accumulate);
        done += 8;
    }
    if (count - done >= 4) {
        walkBlock<4>(feature, threshold, kids, root, steps,
                     rows + done * n_features, n_features, out + done,
                     accumulate);
        done += 4;
    }
    if (count > done)
        walkBlockTail(feature, threshold, kids, root, steps,
                      rows + done * n_features, n_features,
                      count - done, out + done, accumulate);
}

/**
 * One tree-batch chunk: rows [begin, end) through a single tree.
 * Deliberately noinline — the kernel's block loop gets its own
 * register allocation instead of being inlined into whichever caller
 * dispatches it (inlining into predictBatch measurably degrades the
 * unrolled walk's codegen).
 */
__attribute__((noinline)) void
treeChunk(const std::int32_t* feature, const double* threshold,
          const std::int32_t* kids, int steps, const double* row_major,
          std::size_t n_features, double* out, std::size_t begin,
          std::size_t end)
{
    double buf[kBlockRows];
    for (std::size_t r0 = begin; r0 < end; r0 += kBlockRows) {
        std::size_t count = end - r0;
        std::size_t skip = 0;
        if (count > kBlockRows) {
            count = kBlockRows;
        } else if (count < kBlockRows && end - begin >= kBlockRows) {
            // Partial final block with enough history in this chunk:
            // slide back to a full block and re-walk a few rows.
            // Predictions are deterministic, so the overlapped slots
            // are rewritten with identical values, and the overlap
            // never leaves [begin, end) — no cross-chunk writes.
            skip = kBlockRows - count;
            r0 -= skip;
            count = kBlockRows;
        }
        const double* rows = row_major + r0 * n_features;
        if (skip == 0) {
            walkCascade(feature, threshold, kids, 0, steps, rows,
                        n_features, count, out + r0, false);
        } else {
            walkCascade(feature, threshold, kids, 0, steps, rows,
                        n_features, count, buf, false);
            for (std::size_t i = skip; i < count; ++i)
                out[r0 + i] = buf[i];
        }
    }
}

/** One forest-batch chunk: rows [begin, end) through every tree,
 * accumulating per-row sums in tree order (bit-identical to the
 * reference per-row ensemble walk). Noinline for the same reason as
 * treeChunk. */
__attribute__((noinline)) void
forestChunk(const std::int32_t* feature, const double* threshold,
            const std::int32_t* kids, const std::int32_t* roots,
            const int* steps, std::size_t n_trees,
            const double* row_major, std::size_t n_features,
            double* out, std::size_t begin, std::size_t end)
{
    double acc[kBlockRows];
    const auto divisor = static_cast<double>(n_trees);
    for (std::size_t r0 = begin; r0 < end; r0 += kBlockRows) {
        std::size_t count = end - r0;
        std::size_t skip = 0;
        if (count > kBlockRows) {
            count = kBlockRows;
        } else if (count < kBlockRows && end - begin >= kBlockRows) {
            // Same backward overlap as treeChunk: the accumulator is
            // per-block, so re-walking a few already-written rows just
            // recomputes identical sums — only the out writes skip the
            // overlapped prefix.
            skip = kBlockRows - count;
            r0 -= skip;
            count = kBlockRows;
        }
        const double* rows = row_major + r0 * n_features;
        for (std::size_t i = 0; i < count; ++i)
            acc[i] = 0.0;
        // Trees outer, rows inner: each tree's arrays stay hot across
        // the block while every row still sums in tree order.
        for (std::size_t t = 0; t < n_trees; ++t)
            walkCascade(feature, threshold, kids, roots[t], steps[t],
                        rows, n_features, count, acc, true);
        for (std::size_t i = skip; i < count; ++i)
            out[r0 + i] = acc[i] / divisor;
    }
}

}  // namespace

CompiledTree::CompiledTree(const DecisionTreeRegressor& tree)
{
    if (!tree.trained())
        fatal("CompiledTree: source tree not trained");
    const std::size_t n = tree.nodeCount();
    feature_.reserve(n);
    left_.reserve(n);
    right_.reserve(n);
    kids_.reserve(2 * n);
    threshold_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto v = tree.nodeView(i);
        if (v.leaf) {
            feature_.push_back(0);
            threshold_.push_back(v.value);
            left_.push_back(static_cast<std::int32_t>(i));
            right_.push_back(static_cast<std::int32_t>(i));
        } else {
            feature_.push_back(v.feature);
            threshold_.push_back(v.threshold);
            left_.push_back(v.left);
            right_.push_back(v.right);
        }
        kids_.push_back(left_.back());
        kids_.push_back(right_.back());
    }
    steps_ = tree.depth();
}

double
CompiledTree::predict(std::span<const double> x) const
{
    if (!compiled())
        fatal("CompiledTree::predict: not compiled");
    std::int32_t cur = 0;
    while (left_[static_cast<std::size_t>(cur)] != cur) {
        const auto c = static_cast<std::size_t>(cur);
        cur = x[static_cast<std::size_t>(feature_[c])] <= threshold_[c]
                  ? left_[c]
                  : right_[c];
    }
    return threshold_[static_cast<std::size_t>(cur)];
}

std::int32_t
CompiledTree::predictLeaf(std::span<const double> x) const
{
    if (!compiled())
        fatal("CompiledTree::predictLeaf: not compiled");
    std::int32_t cur = 0;
    while (left_[static_cast<std::size_t>(cur)] != cur) {
        const auto c = static_cast<std::size_t>(cur);
        cur = x[static_cast<std::size_t>(feature_[c])] <= threshold_[c]
                  ? left_[c]
                  : right_[c];
    }
    return cur;
}

void
CompiledTree::predictBatch(std::span<const double> rowMajor,
                           std::size_t nFeatures,
                           std::span<double> out) const
{
    if (!compiled())
        fatal("CompiledTree::predictBatch: not compiled");
    const std::size_t nRows = out.size();
    checkBatchShape("CompiledTree::predictBatch", rowMajor.size(),
                    nFeatures, nRows);
    if (nRows == 0)
        return;
    countBatch(nRows);

    const std::size_t nChunks = (nRows + kChunkRows - 1) / kChunkRows;
    parallel::parallelFor(nChunks, [&](std::size_t chunk) {
        const std::size_t begin = chunk * kChunkRows;
        const std::size_t end = std::min(begin + kChunkRows, nRows);
        treeChunk(feature_.data(), threshold_.data(), kids_.data(),
                  steps_, rowMajor.data(), nFeatures, out.data(),
                  begin, end);
    });
}

std::vector<double>
CompiledTree::predict(const Dataset& data) const
{
    const auto flat = data.toRowMajor();
    std::vector<double> out(data.size());
    predictBatch(flat, data.numFeatures(), out);
    return out;
}

CompiledForest::CompiledForest(const RandomForestRegressor& forest)
{
    if (!forest.trained())
        fatal("CompiledForest: source forest not trained");
    const auto& trees = forest.trees();
    std::size_t total = 0;
    for (const auto& tree : trees)
        total += tree.nodeCount();
    feature_.reserve(total);
    left_.reserve(total);
    right_.reserve(total);
    kids_.reserve(2 * total);
    threshold_.reserve(total);
    roots_.reserve(trees.size());
    steps_.reserve(trees.size());
    for (const auto& tree : trees) {
        const auto base =
            static_cast<std::int32_t>(feature_.size());
        roots_.push_back(base);
        steps_.push_back(tree.depth());
        const std::size_t n = tree.nodeCount();
        for (std::size_t i = 0; i < n; ++i) {
            const auto v = tree.nodeView(i);
            if (v.leaf) {
                feature_.push_back(0);
                threshold_.push_back(v.value);
                left_.push_back(base + static_cast<std::int32_t>(i));
                right_.push_back(base + static_cast<std::int32_t>(i));
            } else {
                feature_.push_back(v.feature);
                threshold_.push_back(v.threshold);
                left_.push_back(base + v.left);
                right_.push_back(base + v.right);
            }
            kids_.push_back(left_.back());
            kids_.push_back(right_.back());
        }
    }
}

double
CompiledForest::predict(std::span<const double> x) const
{
    if (!compiled())
        fatal("CompiledForest::predict: not compiled");
    double acc = 0.0;
    for (std::int32_t root : roots_) {
        std::int32_t cur = root;
        while (left_[static_cast<std::size_t>(cur)] != cur) {
            const auto c = static_cast<std::size_t>(cur);
            cur = x[static_cast<std::size_t>(feature_[c])] <=
                          threshold_[c]
                      ? left_[c]
                      : right_[c];
        }
        acc += threshold_[static_cast<std::size_t>(cur)];
    }
    return acc / static_cast<double>(roots_.size());
}

double
CompiledForest::predictVotes(std::span<const double> x,
                             std::vector<double>& votes) const
{
    if (!compiled())
        fatal("CompiledForest::predictVotes: not compiled");
    votes.resize(roots_.size());
    double acc = 0.0;
    for (std::size_t t = 0; t < roots_.size(); ++t) {
        std::int32_t cur = roots_[t];
        while (left_[static_cast<std::size_t>(cur)] != cur) {
            const auto c = static_cast<std::size_t>(cur);
            cur = x[static_cast<std::size_t>(feature_[c])] <=
                          threshold_[c]
                      ? left_[c]
                      : right_[c];
        }
        votes[t] = threshold_[static_cast<std::size_t>(cur)];
        acc += votes[t];
    }
    return acc / static_cast<double>(roots_.size());
}

void
CompiledForest::predictBatch(std::span<const double> rowMajor,
                             std::size_t nFeatures,
                             std::span<double> out) const
{
    if (!compiled())
        fatal("CompiledForest::predictBatch: not compiled");
    const std::size_t nRows = out.size();
    checkBatchShape("CompiledForest::predictBatch", rowMajor.size(),
                    nFeatures, nRows);
    if (nRows == 0)
        return;
    countBatch(nRows);

    const std::size_t nChunks = (nRows + kChunkRows - 1) / kChunkRows;
    parallel::parallelFor(nChunks, [&](std::size_t chunk) {
        const std::size_t begin = chunk * kChunkRows;
        const std::size_t end = std::min(begin + kChunkRows, nRows);
        forestChunk(feature_.data(), threshold_.data(), kids_.data(),
                    roots_.data(), steps_.data(), roots_.size(),
                    rowMajor.data(), nFeatures, out.data(), begin,
                    end);
    });
}

std::vector<double>
CompiledForest::predict(const Dataset& data) const
{
    const auto flat = data.toRowMajor();
    std::vector<double> out(data.size());
    predictBatch(flat, data.numFeatures(), out);
    return out;
}

}  // namespace mapp::ml
