/**
 * @file
 * Dataset serialization: ml::Dataset round-trips through CSV (feature
 * columns + "target" + "group"), so a collected campaign can be cached,
 * versioned, or analyzed with external tools (pandas, R, ...).
 */

#ifndef MAPP_ML_DATASET_IO_H
#define MAPP_ML_DATASET_IO_H

#include <string>

#include "ml/dataset.h"

namespace mapp::ml {

/** Serialize a dataset to CSV text. */
std::string datasetToCsv(const Dataset& data);

/**
 * Parse a dataset from CSV text produced by datasetToCsv (the last two
 * columns must be "target" and "group"). Numeric cells are parsed
 * strictly: trailing garbage, NaN/Inf and overflow are rejected so a
 * corrupt cell cannot poison a trained model.
 * @param source label for the text in error messages (e.g. its path)
 * @throws InputError locating the offending row/column.
 */
Dataset datasetFromCsv(const std::string& text,
                       const std::string& source = "");

/** Write a dataset to a file. @throws InputError on I/O failure. */
void writeDatasetFile(const Dataset& data, const std::string& path);

/** Read a dataset from a file. @throws InputError on I/O or parse failure. */
Dataset readDatasetFile(const std::string& path);

}  // namespace mapp::ml

#endif  // MAPP_ML_DATASET_IO_H
