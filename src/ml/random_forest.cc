#include "ml/random_forest.h"

#include "common/log.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace mapp::ml {

namespace {

/**
 * Per-tree RNG seed: a splitmix64-style mix of the forest seed and the
 * tree index. Each tree owns an independent stream derived only from
 * (seed, t), so fits are bit-identical whether trees are built
 * serially or concurrently, in any order.
 */
std::uint64_t
treeSeed(std::uint64_t forest_seed, int tree)
{
    std::uint64_t z = forest_seed +
                      (static_cast<std::uint64_t>(tree) + 1) *
                          0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

}  // namespace

void
RandomForestRegressor::fit(const Dataset& data)
{
    if (data.empty())
        fatal("RandomForestRegressor::fit: empty dataset");

    const auto n = data.size();
    const auto sampleSize = std::max<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(n) *
                                 params_.sampleFraction),
        1);

    const auto numTrees = static_cast<std::size_t>(params_.numTrees);
    std::vector<DecisionTreeRegressor> trees(
        numTrees, DecisionTreeRegressor(params_.tree));
    parallel::parallelFor(numTrees, [&](std::size_t t) {
        Rng rng(treeSeed(params_.seed, static_cast<int>(t)));
        std::vector<std::size_t> indices;
        indices.reserve(sampleSize);
        for (std::size_t i = 0; i < sampleSize; ++i)
            indices.push_back(static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(n) - 1)));
        trees[t].fit(data.subset(indices));
    });
    trees_ = std::move(trees);
}

double
RandomForestRegressor::predict(std::span<const double> x) const
{
    if (trees_.empty())
        fatal("RandomForestRegressor::predict: model not trained");
    double acc = 0.0;
    for (const auto& tree : trees_)
        acc += tree.predict(x);
    return acc / static_cast<double>(trees_.size());
}

std::vector<double>
RandomForestRegressor::predict(const Dataset& data) const
{
    if (trees_.empty())
        fatal("RandomForestRegressor::predict: model not trained");
    // One pass per tree with the rows inner: each tree's nodes stay
    // hot across the whole dataset instead of re-walking the entire
    // ensemble per row. Every row still sums its tree contributions
    // in tree order, so the result is bit-identical to the per-row
    // ensemble walk.
    std::vector<double> out(data.size(), 0.0);
    for (const auto& tree : trees_)
        for (std::size_t i = 0; i < data.size(); ++i)
            out[i] += tree.predict(data.row(i));
    const auto n = static_cast<double>(trees_.size());
    for (auto& v : out)
        v /= n;
    return out;
}

RandomForestRegressor
RandomForestRegressor::fromTrees(std::vector<DecisionTreeRegressor> trees,
                                 RandomForestParams params)
{
    if (trees.empty())
        fatal("RandomForestRegressor::fromTrees: no trees");
    for (const auto& tree : trees)
        if (!tree.trained())
            fatal("RandomForestRegressor::fromTrees: untrained tree");
    RandomForestRegressor forest(params);
    forest.trees_ = std::move(trees);
    return forest;
}

}  // namespace mapp::ml
