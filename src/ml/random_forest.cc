#include "ml/random_forest.h"

#include "common/log.h"
#include "common/rng.h"

namespace mapp::ml {

void
RandomForestRegressor::fit(const Dataset& data)
{
    if (data.empty())
        fatal("RandomForestRegressor::fit: empty dataset");

    trees_.clear();
    Rng rng(params_.seed);
    const auto n = data.size();
    const auto sampleSize = std::max<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(n) *
                                 params_.sampleFraction),
        1);

    for (int t = 0; t < params_.numTrees; ++t) {
        std::vector<std::size_t> indices;
        indices.reserve(sampleSize);
        for (std::size_t i = 0; i < sampleSize; ++i)
            indices.push_back(static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(n) - 1)));
        const Dataset sample = data.subset(indices);
        DecisionTreeRegressor tree(params_.tree);
        tree.fit(sample);
        trees_.push_back(std::move(tree));
    }
}

double
RandomForestRegressor::predict(std::span<const double> x) const
{
    if (trees_.empty())
        fatal("RandomForestRegressor::predict: model not trained");
    double acc = 0.0;
    for (const auto& tree : trees_)
        acc += tree.predict(x);
    return acc / static_cast<double>(trees_.size());
}

std::vector<double>
RandomForestRegressor::predict(const Dataset& data) const
{
    std::vector<double> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        out.push_back(predict(data.row(i)));
    return out;
}

}  // namespace mapp::ml
