/**
 * @file
 * The compiled batch-inference engine: CompiledTree/CompiledForest
 * flatten a trained DecisionTreeRegressor/RandomForestRegressor into
 * contiguous structure-of-arrays node storage for cache-friendly,
 * allocation-free traversal, plus a batched predictBatch() that walks
 * blocks of samples through the flat arrays and dispatches large
 * batches over the parallel execution layer.
 *
 * Node layout (one slot per node, root at index 0 of each tree):
 *  - feature[i]   int32  feature tested at node i (0 for leaves)
 *  - threshold[i] double split threshold — or, at a leaf, the LEAF
 *                        VALUE (the sentinel encoding: a leaf never
 *                        wins or loses a comparison, see below)
 *  - left[i]/right[i] int32 child indices; a leaf points BOTH at
 *                        itself (left == right == i)
 *  - kids[2i]/kids[2i+1] int32 the same children interleaved, so the
 *                        batch walk selects the taken child with ONE
 *                        indexed load `kids[2i + go]`
 *  - packed[i]    simd::PackedNode  the same node as one 16-byte
 *                        record (threshold + feature/children word) —
 *                        the layout the gather-based walk kernels
 *                        consume (fewest gathers per level)
 *
 * Leaves are folded into this self-loop sentinel so the batch kernel
 * needs no per-step "is this row done?" branch: every row in a block
 * takes exactly depth() comparison steps — rows that reach a leaf
 * early just spin on it (any comparison routes to the same node) —
 * and the final threshold load IS the prediction. The walk kernels
 * get BOTH layouts through a simd::TreeNodes view and each reads the
 * one it is fastest on (see the PackedNode note in common/simd.h);
 * in every kernel the split decision is a SETcc-fed select, never a
 * conditional branch the CPU would mispredict ~50% of the time. With
 * no branches in the loop the CPU overlaps the dependent node-load
 * chains of every row in the block, which is where the batch speedup
 * comes from; one-sample predict() instead early-exits on
 * left[i] == i over the int32 arrays.
 *
 * The packed word gives children 25 bits and features 14, so a
 * compiled engine holds at most simd::PackedNode::kMaxNodes (~33.5M)
 * nodes over at most 16384 features; the constructors fail fast
 * (FatalError) beyond that rather than truncate indices.
 *
 * Compiled predictions are bit-identical to the node-walk reference:
 * the traversal evaluates exactly the same x[feature] <= threshold
 * comparisons on the same doubles, and CompiledForest accumulates
 * per-row tree sums in tree order before the same final division.
 * The node walk in DecisionTreeRegressor stays as the oracle;
 * tests/test_inference.cc fuzzes the equivalence.
 */

#ifndef MAPP_ML_COMPILED_TREE_H
#define MAPP_ML_COMPILED_TREE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace mapp::ml {

/** A DecisionTreeRegressor flattened into SoA node arrays. */
class CompiledTree
{
  public:
    /** An empty, un-compiled engine (predict() throws). */
    CompiledTree() = default;

    /** Flatten @p tree. @throws FatalError if the tree is untrained. */
    explicit CompiledTree(const DecisionTreeRegressor& tree);

    bool compiled() const { return !feature_.empty(); }
    std::size_t nodeCount() const { return feature_.size(); }

    /** Comparison steps a batch row takes (the source tree's depth). */
    int steps() const { return steps_; }

    /** Predict one sample (early-exit walk over the flat arrays). */
    double predict(std::span<const double> x) const;

    /**
     * The flat-array index of the leaf @p x lands on. Leaf indices
     * equal the source tree's node ids, so callers can key
     * per-leaf lookaside tables (audit path summaries, residual RMSE)
     * off the result without re-walking the reference tree.
     */
    std::int32_t predictLeaf(std::span<const double> x) const;

    /**
     * Predict a row-major batch: sample r occupies
     * rowMajor[r*nFeatures .. (r+1)*nFeatures) and its prediction is
     * written to out[r] (out.size() rows). Large batches are split
     * into chunks across parallel::parallelFor lanes; every chunk
     * writes only its own out slots, so the result is bit-identical
     * at any thread count.
     */
    void predictBatch(std::span<const double> rowMajor,
                      std::size_t nFeatures,
                      std::span<double> out) const;

    /** Predict every row of a dataset (flatten once, then batch). */
    std::vector<double> predict(const Dataset& data) const;

  private:
    std::vector<std::int32_t> feature_;
    std::vector<std::int32_t> left_;
    std::vector<std::int32_t> right_;
    std::vector<double> threshold_;
    std::vector<std::int32_t> kids_;  ///< interleaved [left,right]
    std::vector<simd::PackedNode> packed_;  ///< gather-walk layout
    int steps_ = 0;
};

/**
 * A RandomForestRegressor flattened into ONE set of SoA node arrays
 * (trees concatenated, per-tree root offsets), predicting the mean
 * over trees exactly like the reference ensemble.
 */
class CompiledForest
{
  public:
    CompiledForest() = default;

    /** Flatten @p forest. @throws FatalError if untrained. */
    explicit CompiledForest(const RandomForestRegressor& forest);

    bool compiled() const { return !roots_.empty(); }
    std::size_t treeCount() const { return roots_.size(); }
    std::size_t nodeCount() const { return feature_.size(); }

    /** Predict one sample (mean over trees, tree order). */
    double predict(std::span<const double> x) const;

    /**
     * Per-tree votes for one sample: votes[t] is tree t's leaf value,
     * resized to treeCount(). The ensemble prediction is their mean
     * (summed in tree order — identical to predict()), returned so
     * audit hooks get prediction + vote spread in one walk.
     */
    double predictVotes(std::span<const double> x,
                        std::vector<double>& votes) const;

    /** Batched prediction; same contract as CompiledTree. */
    void predictBatch(std::span<const double> rowMajor,
                      std::size_t nFeatures,
                      std::span<double> out) const;

    /** Predict every row of a dataset (flatten once, then batch). */
    std::vector<double> predict(const Dataset& data) const;

  private:
    std::vector<std::int32_t> feature_;
    std::vector<std::int32_t> left_;
    std::vector<std::int32_t> right_;
    std::vector<double> threshold_;
    std::vector<std::int32_t> kids_;  ///< interleaved [left,right]
    std::vector<simd::PackedNode> packed_;  ///< gather-walk layout
    std::vector<std::int32_t> roots_;  ///< root node index per tree
    std::vector<int> steps_;           ///< per-tree depth
};

}  // namespace mapp::ml

#endif  // MAPP_ML_COMPILED_TREE_H
