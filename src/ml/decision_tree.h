/**
 * @file
 * The CART-style decision-tree regressor at the heart of the paper's
 * predictor: greedy MSE-minimizing binary splits (Section II-B.3), a
 * depth hyper-parameter, and — because explainability is the point —
 * full decision-path introspection: which features gate each test
 * point's path and how often (Figures 10-12).
 *
 * The split search uses the classic presorted-CART optimization: the
 * samples are ordered by every feature once at the root and each
 * split stably partitions those orders down to the children, so the
 * whole fit sorts O(F·n log n) once instead of O(F·n log n) per node.
 * Split scores that agree to within a relative tolerance are treated
 * as ties (correlated features routinely produce distinct splits with
 * the same partition) and broken deterministically toward the later
 * candidate, so the grown tree never depends on summation order.
 */

#ifndef MAPP_ML_DECISION_TREE_H
#define MAPP_ML_DECISION_TREE_H

#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace mapp::ml {

/** Decision-tree hyper-parameters. */
struct DecisionTreeParams
{
    int maxDepth = 10;          ///< pre-specified depth bound
    int minSamplesSplit = 2;    ///< nodes smaller than this become leaves
    int minSamplesLeaf = 2;     ///< each child must keep at least this many
    double minImpurityDecrease = 0.0;  ///< SSE reduction required to split
};

/** One step of a decision path: the node and the branch taken. */
struct DecisionStep
{
    int nodeId = 0;
    int feature = -1;       ///< feature tested at the node
    double threshold = 0.0;
    bool wentLeft = false;
};

/**
 * Read-only view of one tree node, exposed so external engines (the
 * compiled SoA inference layer) can flatten a trained tree without
 * depending on the private storage layout.
 */
struct TreeNodeView
{
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;
    double sse = 0.0;  ///< sum of squared target errors at the node
    int samples = 0;   ///< training samples that reached the node
    int left = -1;
    int right = -1;
};

/** A CART regression tree. */
class DecisionTreeRegressor
{
  public:
    explicit DecisionTreeRegressor(DecisionTreeParams params = {})
        : params_(params)
    {
    }

    /** Fit to a dataset (features + targets). @throws FatalError if empty. */
    void fit(const Dataset& data);

    /** Fit to raw rows/targets (used by the random forest). */
    void fit(const std::vector<std::vector<double>>& rows,
             const std::vector<double>& targets,
             std::vector<std::string> feature_names = {});

    /**
     * Reconstruct a trained tree from serialized node views (the
     * model-deserialization path): node 0 is the root and child
     * indices refer into @p nodes. Structural invariants are checked —
     * child indices in range and acyclic (each node reachable from the
     * root at most once), internal nodes carrying a valid feature
     * index, leaves carrying none — and node depths are recomputed, so
     * a corrupt model file cannot produce a tree that predicts out of
     * bounds. @throws FatalError on any violated invariant.
     */
    static DecisionTreeRegressor fromNodes(
        const std::vector<TreeNodeView>& nodes,
        std::vector<std::string> feature_names,
        DecisionTreeParams params = {});

    /** Predict one sample. */
    double predict(std::span<const double> x) const;

    /** Predict every row of a dataset. */
    std::vector<double> predict(const Dataset& data) const;

    /** The internal decision nodes visited by a sample, in order. */
    std::vector<DecisionStep> decisionPath(std::span<const double> x) const;

    /**
     * How many times each feature is tested on the sample's decision
     * path (the quantity plotted in Figures 11-12).
     */
    std::vector<int> featureUsageCounts(std::span<const double> x) const;

    /** Total number of nodes (internal + leaves). */
    std::size_t nodeCount() const { return nodes_.size(); }

    /** View of node @p i (root is 0). @throws FatalError if out of
     *  range. */
    TreeNodeView nodeView(std::size_t i) const;

    /** Depth actually reached. */
    int depth() const;

    /** True once fit() has run. */
    bool trained() const { return !nodes_.empty(); }

    /** The hyper-parameters the tree was constructed with. */
    const DecisionTreeParams& params() const { return params_; }

    /** Number of features the tree was trained on. */
    std::size_t numFeatures() const { return featureNames_.size(); }

    /** Feature names (empty strings if fitted from raw rows). */
    const std::vector<std::string>& featureNames() const
    {
        return featureNames_;
    }

    /**
     * Impurity-decrease feature importances, normalized to sum to 1
     * (scikit-learn's definition).
     */
    std::vector<double> featureImportances() const;

    /** Readable multi-line rendering of the tree. */
    std::string toText() const;

    /** Graphviz DOT rendering. */
    std::string toDot() const;

  private:
    struct Node
    {
        bool leaf = true;
        int feature = -1;
        double threshold = 0.0;
        double value = 0.0;       ///< mean target at the node
        double sse = 0.0;         ///< sum of squared errors at the node
        int samples = 0;
        int left = -1;
        int right = -1;
        int depth = 0;
    };

    /**
     * Grow one subtree over the samples in @p orders (one presorted
     * index array per feature, all covering the same sample set).
     * @p indices holds the same samples in partition order (root:
     * dataset order; children: the parent's order filtered) — node
     * statistics sum in that order so the grown tree is bit-identical
     * to the naive per-node-sort search. @p side is a rows.size()
     * scratch buffer marking each sample's split side.
     */
    int buildNode(const std::vector<std::vector<double>>& rows,
                  const std::vector<double>& targets,
                  std::vector<std::vector<std::size_t>>& orders,
                  const std::vector<std::size_t>& indices, int depth,
                  std::vector<char>& side);

    DecisionTreeParams params_;
    std::vector<Node> nodes_;
    std::vector<std::string> featureNames_;
};

}  // namespace mapp::ml

#endif  // MAPP_ML_DECISION_TREE_H
