#include "ml/dataset_io.h"

#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/file_io.h"
#include "common/log.h"
#include "common/parse.h"

namespace mapp::ml {

std::string
datasetToCsv(const Dataset& data)
{
    std::ostringstream os;
    CsvWriter writer(os);

    std::vector<std::string> headerRow = data.featureNames();
    headerRow.emplace_back("target");
    headerRow.emplace_back("group");
    writer.writeHeader(headerRow);

    for (std::size_t r = 0; r < data.size(); ++r) {
        std::vector<std::string> row;
        row.reserve(headerRow.size());
        for (double v : data.row(r)) {
            std::ostringstream cell;
            cell.precision(17);
            cell << v;
            row.push_back(cell.str());
        }
        std::ostringstream target;
        target.precision(17);
        target << data.target(r);
        row.push_back(target.str());
        row.push_back(data.group(r));
        writer.writeRow(row);
    }
    return os.str();
}

Dataset
datasetFromCsv(const std::string& text, const std::string& source)
{
    const CsvTable table = parseCsv(text, source);
    if (table.header.size() < 2)
        raise({ErrorCode::Schema,
               "header too short (" +
                   std::to_string(table.header.size()) +
                   " columns, need at least target,group)",
               {source, 0, ""}});
    if (table.header[table.header.size() - 2] != "target" ||
        table.header.back() != "group") {
        raise({ErrorCode::Schema,
               "last columns must be target,group (got '" +
                   table.header[table.header.size() - 2] + "','" +
                   table.header.back() + "')",
               {source, 0, ""}});
    }

    const std::size_t numFeatures = table.header.size() - 2;
    Dataset data({table.header.begin(),
                  table.header.begin() +
                      static_cast<long>(numFeatures)});
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        const auto& row = table.rows[r];
        if (row.size() != table.header.size())
            raise({ErrorCode::Schema,
                   "row has " + std::to_string(row.size()) +
                       " cells, expected " +
                       std::to_string(table.header.size()),
                   {source, r + 1, ""}});
        std::vector<double> features;
        features.reserve(numFeatures);
        for (std::size_t f = 0; f < numFeatures; ++f) {
            features.push_back(
                parseDouble(row[f]).orThrow(
                    {source, r + 1, table.header[f]}));
        }
        const double target = parseDouble(row[numFeatures])
                                  .orThrow({source, r + 1, "target"});
        data.addRow(std::move(features), target, row.back());
    }
    return data;
}

void
writeDatasetFile(const Dataset& data, const std::string& path)
{
    if (!writeFileAtomic(path, datasetToCsv(data)))
        raise({ErrorCode::Io, "cannot write file", {path, 0, ""}});
}

Dataset
readDatasetFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise({ErrorCode::Io, "cannot open file", {path, 0, ""}});
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        raise({ErrorCode::Io, "read failed", {path, 0, ""}});
    return datasetFromCsv(ss.str(), path);
}

}  // namespace mapp::ml
