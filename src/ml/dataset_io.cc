#include "ml/dataset_io.h"

#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/log.h"

namespace mapp::ml {

std::string
datasetToCsv(const Dataset& data)
{
    std::ostringstream os;
    CsvWriter writer(os);

    std::vector<std::string> headerRow = data.featureNames();
    headerRow.emplace_back("target");
    headerRow.emplace_back("group");
    writer.writeHeader(headerRow);

    for (std::size_t r = 0; r < data.size(); ++r) {
        std::vector<std::string> row;
        row.reserve(headerRow.size());
        for (double v : data.row(r)) {
            std::ostringstream cell;
            cell.precision(17);
            cell << v;
            row.push_back(cell.str());
        }
        std::ostringstream target;
        target.precision(17);
        target << data.target(r);
        row.push_back(target.str());
        row.push_back(data.group(r));
        writer.writeRow(row);
    }
    return os.str();
}

Dataset
datasetFromCsv(const std::string& text)
{
    const CsvTable table = parseCsv(text);
    if (table.header.size() < 2)
        fatal("datasetFromCsv: header too short");
    if (table.header[table.header.size() - 2] != "target" ||
        table.header.back() != "group") {
        fatal("datasetFromCsv: last columns must be target,group");
    }

    const std::size_t numFeatures = table.header.size() - 2;
    Dataset data({table.header.begin(),
                  table.header.begin() +
                      static_cast<long>(numFeatures)});
    for (const auto& row : table.rows) {
        if (row.size() != table.header.size())
            fatal("datasetFromCsv: short row");
        std::vector<double> features;
        features.reserve(numFeatures);
        for (std::size_t f = 0; f < numFeatures; ++f) {
            try {
                features.push_back(std::stod(row[f]));
            } catch (const std::exception&) {
                fatal("datasetFromCsv: bad numeric cell '" + row[f] + "'");
            }
        }
        double target = 0.0;
        try {
            target = std::stod(row[numFeatures]);
        } catch (const std::exception&) {
            fatal("datasetFromCsv: bad target cell");
        }
        data.addRow(std::move(features), target, row.back());
    }
    return data;
}

void
writeDatasetFile(const Dataset& data, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("writeDatasetFile: cannot open " + path);
    out << datasetToCsv(data);
    if (!out)
        fatal("writeDatasetFile: write failed for " + path);
}

Dataset
readDatasetFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("readDatasetFile: cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return datasetFromCsv(ss.str());
}

}  // namespace mapp::ml
