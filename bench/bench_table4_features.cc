/**
 * @file
 * Table IV: the feature list. Prints every feature of the bag feature
 * vector with its description, per-feature range over the campaign, and
 * its Pearson correlation with the prediction target (the bag's GPU
 * execution time) — the quantitative backdrop for Section V-A.
 */

#include <cstdio>

#include "bench/harness.h"
#include "common/stats.h"

using namespace mapp;

namespace {

std::string
describe(const std::string& base)
{
    if (base == "cpu_time")
        return "execution time on the CPU (single instance)";
    if (base == "gpu_time")
        return "execution time on the GPU (single instance)";
    if (base == "fairness")
        return "fairness of concurrent multi-app execution (Eq. 2)";
    if (base == "sse")
        return "% of SSE instructions";
    if (base == "arith")
        return "% of arithmetic instructions";
    if (base == "mem_rd")
        return "% of load instructions";
    if (base == "mem_wr")
        return "% of store instructions";
    if (base == "fp")
        return "% of floating point instructions";
    if (base == "stack")
        return "% of stack push/pop instructions";
    if (base == "string")
        return "% of string operations";
    if (base == "shift")
        return "% of multiply/shift operations";
    if (base == "ctrl")
        return "% of control/branch instructions";
    return "";
}

}  // namespace

int
main()
{
    bench::printSystemHeader("Table IV - feature list over the campaign");
    const auto& data = bench::campaignDataset();

    TextTable table("Features (a0_/a1_ blocks replicated per app)");
    table.setHeader(
        {"feature", "min", "max", "corr(target)", "description"});
    for (std::size_t f = 0; f < data.numFeatures(); ++f) {
        const auto col = data.column(f);
        const auto& name = data.featureNames()[f];
        table.addRow({name, formatDouble(stats::minimum(col), 4),
                      formatDouble(stats::maximum(col), 4),
                      formatDouble(stats::pearson(col, data.targets()), 3),
                      describe(predictor::baseNameOf(name))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("data points: %zu (91-run campaign), target: bag GPU "
                "execution time\n",
                data.size());
    return 0;
}
