/**
 * @file
 * Section VI-A's correlation claim: the CPU time of a benchmark is
 * strongly positively correlated (paper: 0.95) with the bag's GPU
 * execution time. Prints Pearson and Spearman correlations of every
 * per-app time feature and fairness against the target.
 */

#include <cstdio>

#include "bench/harness.h"
#include "common/stats.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Section VI-A - feature/target correlations over the campaign");

    const auto& data = bench::campaignDataset();
    TextTable table("correlation with the bag GPU time");
    table.setHeader({"feature", "pearson", "spearman"});
    for (const std::string name :
         {"a0_cpu_time", "a1_cpu_time", "a0_gpu_time", "a1_gpu_time",
          "a0_mem_rd", "a0_sse", "a0_ctrl", "fairness"}) {
        const auto col = data.column(
            static_cast<std::size_t>(data.featureIndex(name)));
        table.addRow({name,
                      formatDouble(stats::pearson(col, data.targets()), 3),
                      formatDouble(stats::spearman(col, data.targets()),
                                   3)});
    }
    std::printf("%s\n", table.render().c_str());

    const auto cpu = data.column(
        static_cast<std::size_t>(data.featureIndex("a0_cpu_time")));
    std::printf("paper: corr(CPU time, bag GPU time) = 0.95; measured "
                "%.3f\n",
                stats::pearson(cpu, data.targets()));
    return 0;
}
