/**
 * @file
 * Extension: closing the paper's Section-VII open problem at k = 3 on
 * the simulated testbed. Trains a dedicated 3-app KBagPredictor on a
 * 3-bag campaign and compares its held-out error against the naive
 * baseline (scale the 2-app model's prediction by 3/2).
 */

#include <cstdio>

#include "bench/harness.h"
#include "ml/metrics.h"
#include "predictor/kbag.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Extension - a dedicated 3-app predictor vs. naive 2-app "
        "chaining");

    // 2-app model on the standard campaign (the baseline's engine).
    predictor::MultiAppPredictor twoApp;
    twoApp.train(bench::campaignPoints());

    // 3-bag campaign: train on one seed's bags, test on another's.
    predictor::KBagCollector kbags(bench::collector());
    std::vector<predictor::KBagPoint> train;
    for (const auto& spec : kbags.campaign(3, 24, /*seed=*/11))
        train.push_back(kbags.collect(spec));
    predictor::KBagPredictor threeApp(3);
    threeApp.train(train);

    std::vector<predictor::KBagPoint> test;
    for (const auto& spec : kbags.campaign(3, 16, /*seed=*/77))
        test.push_back(kbags.collect(spec));

    double kbagErr = 0.0;
    double naiveErr = 0.0;
    for (const auto& point : test) {
        kbagErr += ml::relativeErrorPercent(point.gpuBagTime,
                                            threeApp.predict(point));
        // Naive baseline: predict the 2-bag of the two largest members
        // and scale by 3/2.
        const auto& apps = point.apps;
        std::size_t big1 = 0;
        std::size_t big2 = 1;
        for (std::size_t i = 0; i < apps.size(); ++i)
            if (apps[i].gpuTime > apps[big1].gpuTime)
                big1 = i;
        for (std::size_t i = 0; i < apps.size(); ++i)
            if (i != big1 &&
                (big2 == big1 || apps[i].gpuTime > apps[big2].gpuTime))
                big2 = i;
        const double naive =
            twoApp.predict(apps[std::min(big1, big2)],
                           apps[std::max(big1, big2)], point.fairness) *
            1.5;
        naiveErr +=
            ml::relativeErrorPercent(point.gpuBagTime, naive);
    }
    kbagErr /= static_cast<double>(test.size());
    naiveErr /= static_cast<double>(test.size());

    TextTable table("held-out error on 16 unseen 3-bags");
    table.setHeader({"model", "mean relative error(%)"});
    table.addRow({"KBagPredictor (k=3, trained on 3-bags)",
                  formatDouble(kbagErr, 2)});
    table.addRow({"naive: 2-app model x 1.5", formatDouble(naiveErr, 2)});
    std::printf("%s\n", table.render().c_str());
    std::printf("training a k-specific model on k-bags %s the naive "
                "chaining baseline.\n",
                kbagErr < naiveErr ? "beats" : "does not beat");
    return 0;
}
