/**
 * @file
 * google-benchmark microbenchmarks of the ML library and the two
 * performance simulators — the throughput backbone of the whole
 * data-collection + training pipeline.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "cpusim/multicore_sim.h"
#include "gpusim/mps_sim.h"
#include "ml/compiled_tree.h"
#include "ml/decision_tree.h"
#include "ml/linear_regression.h"
#include "ml/random_forest.h"
#include "ml/svr.h"
#include "vision/registry.h"

namespace {

using namespace mapp;

ml::Dataset
syntheticDataset(std::size_t rows, std::size_t features)
{
    Rng rng(99);
    std::vector<std::string> names;
    for (std::size_t f = 0; f < features; ++f)
        names.push_back("f" + std::to_string(f));
    ml::Dataset d(names);
    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<double> row;
        double target = 0.0;
        for (std::size_t f = 0; f < features; ++f) {
            const double v = rng.uniform(0.0, 1.0);
            row.push_back(v);
            target += std::sin(static_cast<double>(f + 1) * v);
        }
        d.addRow(std::move(row), target, "g");
    }
    return d;
}

void
BM_DecisionTreeFit(benchmark::State& state)
{
    const auto d =
        syntheticDataset(static_cast<std::size_t>(state.range(0)), 23);
    for (auto _ : state) {
        ml::DecisionTreeRegressor tree;
        tree.fit(d);
        benchmark::DoNotOptimize(tree);
    }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(91)->Arg(500);

void
BM_DecisionTreePredict(benchmark::State& state)
{
    const auto d = syntheticDataset(500, 23);
    ml::DecisionTreeRegressor tree;
    tree.fit(d);
    for (auto _ : state)
        for (std::size_t i = 0; i < d.size(); ++i)
            benchmark::DoNotOptimize(tree.predict(d.row(i)));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(d.size()));
}
BENCHMARK(BM_DecisionTreePredict);

void
BM_CompiledTreePredictBatch(benchmark::State& state)
{
    const auto d = syntheticDataset(500, 23);
    ml::DecisionTreeRegressor tree;
    tree.fit(d);
    const ml::CompiledTree compiled(tree);
    const auto flat = d.toRowMajor();
    std::vector<double> out(d.size());
    for (auto _ : state) {
        compiled.predictBatch(flat, d.numFeatures(), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(d.size()));
}
BENCHMARK(BM_CompiledTreePredictBatch);

void
BM_ForestPredictPerRow(benchmark::State& state)
{
    const auto d = syntheticDataset(500, 23);
    ml::RandomForestParams params;
    params.numTrees = static_cast<int>(state.range(0));
    ml::RandomForestRegressor forest(params);
    forest.fit(d);
    for (auto _ : state)
        for (std::size_t i = 0; i < d.size(); ++i)
            benchmark::DoNotOptimize(forest.predict(d.row(i)));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(d.size()));
}
BENCHMARK(BM_ForestPredictPerRow)->Arg(50);

void
BM_CompiledForestPredictBatch(benchmark::State& state)
{
    const auto d = syntheticDataset(500, 23);
    ml::RandomForestParams params;
    params.numTrees = static_cast<int>(state.range(0));
    ml::RandomForestRegressor forest(params);
    forest.fit(d);
    const ml::CompiledForest compiled(forest);
    const auto flat = d.toRowMajor();
    std::vector<double> out(d.size());
    for (auto _ : state) {
        compiled.predictBatch(flat, d.numFeatures(), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(d.size()));
}
BENCHMARK(BM_CompiledForestPredictBatch)->Arg(50);

void
BM_SvrFit(benchmark::State& state)
{
    const auto d =
        syntheticDataset(static_cast<std::size_t>(state.range(0)), 23);
    for (auto _ : state) {
        ml::SvrRegressor svr;
        svr.fit(d);
        benchmark::DoNotOptimize(svr);
    }
}
BENCHMARK(BM_SvrFit)->Arg(91);

void
BM_LinearRegressionFit(benchmark::State& state)
{
    const auto d = syntheticDataset(500, 23);
    for (auto _ : state) {
        ml::LinearRegression lr;
        lr.fit(d);
        benchmark::DoNotOptimize(lr);
    }
}
BENCHMARK(BM_LinearRegressionFit);

void
BM_ProfileWorkload(benchmark::State& state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            vision::profileWorkload(vision::BenchmarkId::Hog, 20));
}
BENCHMARK(BM_ProfileWorkload);

void
BM_CpuSimSharedRun(benchmark::State& state)
{
    const auto& trace = vision::cachedTrace(vision::BenchmarkId::Hog, 20);
    cpusim::MulticoreSim sim;
    const int threads = sim.bestThreadCount(trace);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sim.runShared({&trace, &trace}, {threads, threads}));
}
BENCHMARK(BM_CpuSimSharedRun);

void
BM_GpuSimSharedRun(benchmark::State& state)
{
    const auto& trace =
        vision::cachedTrace(vision::BenchmarkId::Surf, 20);
    gpusim::MpsSim sim;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.runShared({&trace, &trace}));
}
BENCHMARK(BM_GpuSimSharedRun);

}  // namespace

BENCHMARK_MAIN();
