/**
 * @file
 * Ablation: feature normalization. Section V-C normalizes times by the
 * (max - min) range of the CPU-time feature over the training data;
 * this bench compares against no normalization at all, exploiting the
 * tree's scale invariance (the tree itself is unaffected; only the
 * normalized target changes round-trip fidelity).
 */

#include <cstdio>

#include "bench/harness.h"
#include "ml/metrics.h"

using namespace mapp;

namespace {

/** LOOCV with the raw (unnormalized) pipeline. */
double
loocvUnnormalized()
{
    const auto& raw = bench::campaignDataset();
    const auto scheme = predictor::fullScheme();
    double errSum = 0.0;
    int folds = 0;
    for (const auto& name : bench::benchmarkNames()) {
        auto [train, test] = predictor::splitOutBenchmark(raw, name);
        if (train.empty() || test.empty())
            continue;
        ml::DecisionTreeRegressor tree;
        tree.fit(train.selectFeatures(scheme.featureNames()));
        const auto testProj = test.selectFeatures(scheme.featureNames());
        std::vector<double> predictions;
        for (std::size_t i = 0; i < testProj.size(); ++i)
            predictions.push_back(tree.predict(testProj.row(i)));
        errSum += ml::meanRelativeErrorPercent(test.targets(),
                                               predictions);
        ++folds;
    }
    return folds ? errSum / folds : 0.0;
}

}  // namespace

int
main()
{
    bench::printSystemHeader(
        "Ablation - Section V-C range normalization vs. raw features");

    const double normalized =
        bench::schemeLoocvError(predictor::fullScheme());
    const double rawErr = loocvUnnormalized();

    TextTable table("LOOCV relative error (%)");
    table.setHeader({"pipeline", "error(%)"});
    table.addRow({"CPU-time-range normalization (paper)",
                  formatDouble(normalized, 2)});
    table.addRow({"no normalization", formatDouble(rawErr, 2)});
    std::printf("%s\n", table.render().c_str());
    std::printf("CART splits are monotone-invariant, so the two agree "
                "up to tie-breaking; the paper's normalization mainly "
                "conditions the regression targets.\n");
    return 0;
}
