/**
 * @file
 * Figure 5: comparison with related work. Four feature schemes — the
 * instruction mix alone (Baldini et al.'s feature family), +CPU time,
 * +fairness, and the full Table-IV vector — evaluated with the paper's
 * LOOCV. The paper reports 144.6% -> 57.05% -> 37.7% -> 9.05%.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 5 - comparison with related-work feature sets (LOOCV "
        "relative error)");

    std::vector<Bar> bars;
    TextTable table("scheme errors (paper: 144.6 / 57.05 / 37.7 / 9.05)");
    table.setHeader({"feature scheme", "error(%)"});
    for (const auto& scheme : predictor::figure5Schemes()) {
        const double err = bench::schemeLoocvError(scheme);
        table.addRow({scheme.name, formatDouble(err, 2)});
        bars.push_back({scheme.name, err});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n",
                renderBarChart("LOOCV relative error", bars, 40, "%")
                    .c_str());
    return 0;
}
