/**
 * @file
 * Figure 10: percentage of the test points containing a feature in
 * their decision path. Runs the paper's LOOCV, walks every held-out
 * point through its fold's tree, and aggregates slot features to their
 * base names. The paper reports GPU time at 100% and fairness at ~65%.
 */

#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "predictor/decision_analysis.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 10 - % of test points using each feature in their "
        "decision path");

    const auto stats = predictor::analyzeDecisionPaths(
        bench::campaignDataset(), predictor::PredictorParams{},
        bench::benchmarkNames());

    // Sort features by presence, descending, like the paper's bars.
    std::vector<std::pair<std::string, double>> rows(
        stats.presencePercent.begin(), stats.presencePercent.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second > b.second;
    });

    std::vector<Bar> bars;
    TextTable table("decision-path feature presence over " +
                    std::to_string(stats.points.size()) +
                    " LOOCV test points");
    table.setHeader({"feature", "% of test points"});
    for (const auto& [name, pct] : rows) {
        table.addRow({name, formatDouble(pct, 1)});
        bars.push_back({name, pct});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n",
                renderBarChart("presence", bars, 40, "%").c_str());
    return 0;
}
