/**
 * @file
 * Table II: the nine vision benchmarks. Runs each kernel on its standard
 * batch, prints the MICA characterization (instruction mix, footprint,
 * behavioural attributes) and the measured single-instance times.
 */

#include <cstdio>

#include "bench/harness.h"
#include "profiler/mica.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Table II - benchmark suite characterization (batch = 20)");

    TextTable table("Workloads (derived from MEVBench, Table II)");
    table.setHeader({"bench", "insts(M)", "mem%", "arith%", "fp%", "sse%",
                     "ctrl%", "CPU time(ms)", "GPU time(ms)",
                     "description"});
    for (auto id : vision::kAllBenchmarks) {
        const predictor::BagMember m{id, 20};
        const auto& trace = vision::cachedTrace(id, 20);
        const auto mica = profiler::characterize(trace);
        const auto& f = bench::collector().appFeatures(m);
        table.addRow(
            {vision::benchmarkName(id),
             formatDouble(static_cast<double>(mica.instructions) / 1e6, 1),
             formatDouble(mica.memPercent(), 1),
             formatDouble(mica.percent(isa::InstClass::IntAlu), 1),
             formatDouble(mica.percent(isa::InstClass::FpAlu), 1),
             formatDouble(mica.percent(isa::InstClass::Simd), 1),
             formatDouble(mica.percent(isa::InstClass::Control), 1),
             formatDouble(f.cpuTime * 1e3, 3),
             formatDouble(f.gpuTime * 1e3, 3),
             vision::benchmarkDescription(id).substr(0, 40)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
