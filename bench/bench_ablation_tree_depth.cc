/**
 * @file
 * Ablation: the decision tree's depth and leaf-size hyper-parameters
 * (the paper names depth as the pre-specified knob, Section II-B.3).
 * Sweeps both over the campaign LOOCV.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Ablation - decision-tree depth / min-samples-leaf sweep "
        "(full features, LOOCV)");

    TextTable table("LOOCV relative error (%)");
    table.setHeader({"max depth", "leaf>=1", "leaf>=2", "leaf>=4"});
    for (int depth : {2, 3, 4, 5, 6, 8, 10, 12}) {
        std::vector<double> row;
        for (int leaf : {1, 2, 4}) {
            predictor::PredictorParams params;
            params.tree.maxDepth = depth;
            params.tree.minSamplesLeaf = leaf;
            row.push_back(predictor::MultiAppPredictor::looBenchmarkCv(
                              bench::campaignDataset(), params,
                              bench::benchmarkNames())
                              .meanRelativeError());
        }
        table.addRow("depth " + std::to_string(depth), row, 2);
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
