/**
 * @file
 * Diagnostic: where each benchmark's single-instance GPU time goes —
 * SIMT compute, Amdahl serial crawl, DRAM drain, exposed TLB walks, and
 * launch/staging overheads. This decomposition explains Figure 3's
 * GPU-loser exceptions (overhead-bound and serial-bound kernels) and is
 * the GPU-side analogue of the paper's Section II cost taxonomy.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Diagnostic - single-instance GPU time decomposition (batch = "
        "20)");

    TextTable table("per-benchmark GPU time breakdown (ms; time is the "
                    "overlapped total)");
    table.setHeader({"bench", "compute", "serial", "memory", "tlb",
                     "overhead", "total"});
    for (auto id : vision::kAllBenchmarks) {
        const auto& trace = vision::cachedTrace(id, 20);
        const auto phases = bench::collector().gpuSim().timeline(trace);
        double compute = 0.0;
        double serial = 0.0;
        double memory = 0.0;
        double tlb = 0.0;
        double overhead = 0.0;
        double total = 0.0;
        for (const auto& t : phases) {
            compute += t.computeTime;
            serial += t.serialTime;
            memory += t.memoryTime;
            tlb += t.tlbTime;
            overhead += t.overheadTime;
            total += t.time;
        }
        table.addRow(vision::benchmarkName(id),
                     {compute * 1e3, serial * 1e3, memory * 1e3,
                      tlb * 1e3, overhead * 1e3, total * 1e3},
                     3);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "reading: overhead-dominated rows (FAST, ORB) and serial-"
        "dominated rows (SVM) are exactly the paper's Figure-3 "
        "exceptions where the GPU fails to beat the CPU.\n");
    return 0;
}
