/**
 * @file
 * Ablation: the fairness definition. Equation 2 folds the per-task
 * slowdowns by min/max; this bench re-collects the campaign's fairness
 * under the mean-slowdown and harmonic-mean variants and compares the
 * LOOCV error of schemes that rely on fairness.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

namespace {

double
loocvWithVariant(predictor::FairnessVariant variant,
                 const predictor::FeatureScheme& scheme)
{
    predictor::CollectorParams cparams;
    cparams.fairnessVariant = variant;
    predictor::DataCollector collector({}, {}, cparams);
    const auto points =
        collector.collectAll(predictor::DataCollector::campaign91());
    const auto raw = predictor::toDataset(points);

    predictor::PredictorParams params;
    params.scheme = scheme;
    std::vector<std::string> names;
    for (auto id : mapp::vision::kAllBenchmarks)
        names.push_back(mapp::vision::benchmarkName(id));
    return predictor::MultiAppPredictor::looBenchmarkCv(raw, params,
                                                        names)
        .meanRelativeError();
}

}  // namespace

int
main()
{
    bench::printSystemHeader(
        "Ablation - fairness variants (Eq. 2 min/max vs. mean vs. "
        "harmonic)");

    predictor::FeatureScheme cpuFair;
    cpuFair.name = "cpu+fairness";
    cpuFair.cpuTime = true;
    cpuFair.fairness = true;

    TextTable table("LOOCV relative error (%) by fairness definition");
    table.setHeader({"variant", "cpu+fairness", "full"});
    const std::pair<predictor::FairnessVariant, std::string> variants[] = {
        {predictor::FairnessVariant::MinOverPairs, "Eq.2 min/max"},
        {predictor::FairnessVariant::MeanSlowdown, "mean slowdown"},
        {predictor::FairnessVariant::HarmonicMean, "harmonic mean"},
    };
    for (const auto& [variant, label] : variants) {
        table.addRow(label,
                     {loocvWithVariant(variant, cpuFair),
                      loocvWithVariant(variant, predictor::fullScheme())},
                     2);
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
