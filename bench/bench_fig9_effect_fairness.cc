/**
 * @file
 * Figure 9: effect of the fairness feature. Feature combinations
 * evaluated without and with the Equation-2 fairness added; the last
 * row is the paper's full feature vector.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 9 - effect of fairness on the prediction error");

    std::vector<predictor::FeatureScheme> bases;
    bases.push_back(predictor::insmixScheme());
    {
        predictor::FeatureScheme s = predictor::insmixScheme();
        s.cpuTime = true;
        s.name = "insmix+cpu";
        bases.push_back(s);
    }
    {
        predictor::FeatureScheme s;
        s.name = "cpu";
        s.cpuTime = true;
        bases.push_back(s);
    }
    {
        predictor::FeatureScheme s;
        s.name = "gpu";
        s.gpuTime = true;
        bases.push_back(s);
    }
    {
        predictor::FeatureScheme s = predictor::insmixScheme();
        s.cpuTime = true;
        s.gpuTime = true;
        s.name = "insmix+cpu+gpu (full w/o fairness)";
        bases.push_back(s);
    }

    TextTable table("LOOCV relative error without / with fairness");
    table.setHeader({"base combination", "without(%)", "with(%)",
                     "delta(%)"});
    for (const auto& base : bases) {
        const double without = bench::schemeLoocvError(base);
        const double with =
            bench::schemeLoocvError(base.with("fairness"));
        table.addRow({base.name, formatDouble(without, 2),
                      formatDouble(with, 2),
                      formatDouble(with - without, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
