/**
 * @file
 * The artifact-cache microbench: cold-compute vs. warm-load cost for
 * every cached artifact class. The headline pair is the 91-run
 * campaign — computed from scratch against an empty cache, then served
 * from the single campaign record by a fresh collector — plus the
 * per-blob serialize/parse costs for traces, datasets (binary vs. the
 * CSV path it replaces) and trained tree models. Every number lands in
 * the metrics sidecar (bench.cache.* gauges) so the cache's perf
 * trajectory is measured, not asserted.
 *
 * Flags:
 *   --iters=<n>  scale all repetition counts (default 200; the
 *                bench_micro_cache_smoke ctest entry passes a tiny
 *                value so the whole path is compile- and run-checked
 *                in tier 1).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <unistd.h>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "cache/artifact_cache.h"
#include "common/parse.h"
#include "common/table.h"
#include "isa/trace_binary.h"
#include "ml/dataset_binary.h"
#include "ml/dataset_io.h"
#include "ml/decision_tree.h"
#include "ml/model_binary.h"
#include "predictor/data_collection.h"
#include "vision/registry.h"

using namespace mapp;

namespace {

/**
 * Time @p reps calls of @p body, splitting them into slices and
 * scaling the fastest slice to the full rep count (same noise-
 * rejecting minimum estimator as the inference microbench).
 */
double
secondsFor(const std::function<void()>& body, long reps)
{
    constexpr long kSlices = 15;
    const long perSlice = std::max(1L, reps / kSlices);
    double best = 0.0;
    for (long done = 0; done < reps; done += perSlice) {
        const long n = std::min(perSlice, reps - done);
        const auto t0 = std::chrono::steady_clock::now();
        for (long r = 0; r < n; ++r)
            body();
        const auto t1 = std::chrono::steady_clock::now();
        const double perRep =
            std::chrono::duration<double>(t1 - t0).count() /
            static_cast<double>(n);
        if (best == 0.0 || perRep < best)
            best = perRep;
    }
    return best * static_cast<double>(reps);
}

void
setGauge(const std::string& key, double value)
{
    obs::defaultRegistry().gauge(key).set(value);
}

/** One-shot wall time of @p body in seconds. */
double
onceSeconds(const std::function<void()>& body)
{
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int
main(int argc, char** argv)
{
    long iters = 200;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--iters=", 0) == 0) {
            const auto v = parseBoundedInt(
                arg.substr(std::string("--iters=").size()), 1,
                1 << 24);
            if (!v) {
                std::fprintf(stderr, "error: bad --iters: %s\n",
                             v.error().message().c_str());
                return 1;
            }
            iters = v.value();
        } else {
            std::fprintf(stderr, "error: unknown flag '%s'\n",
                         arg.c_str());
            return 1;
        }
    }

    bench::printSystemHeader(
        "Artifact-cache microbench - cold compute vs. warm load");

    // Point the process-wide cache at a throwaway directory so this
    // bench never reads (or pollutes) a real ~/.cache/mapp.
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() /
        ("mapp_bench_cache_" + std::to_string(::getpid()));
    fs::remove_all(root);
    auto& cache = cache::defaultArtifactCache();
    cache.setDirectory(root.string());

    // --- campaign: cold end-to-end collection vs. warm record load ---
    const auto campaign = predictor::DataCollector::campaign91();
    std::vector<predictor::DataPoint> points;
    const double campaignCold = onceSeconds([&] {
        predictor::DataCollector cold;
        points = cold.collectAll(campaign);
    });
    const long warmReps = std::max(1L, iters / 20);
    const double campaignWarm =
        secondsFor(
            [&] {
                predictor::DataCollector warm;
                points = warm.collectAll(campaign);
            },
            warmReps) /
        static_cast<double>(warmReps);

    // --- trace: binary serialize / parse of a profiled workload ---
    const auto& trace =
        vision::cachedTrace(vision::BenchmarkId::Sift, 40);
    const std::string traceBlob = isa::traceToBinary(trace);
    const double traceSerialize = secondsFor(
        [&] { (void)isa::traceToBinary(trace); }, iters);
    const double traceParse = secondsFor(
        [&] { (void)isa::traceFromBinary(traceBlob, "bench"); },
        iters);

    // --- dataset: binary parse vs. the CSV reader it replaces ---
    const ml::Dataset data = predictor::toDataset(points);
    const std::string dataBlob = ml::datasetToBinary(data);
    const fs::path csvPath = root / "bench_dataset.csv";
    const fs::path binPath = root / "bench_dataset.bin";
    ml::writeDatasetFile(data, csvPath.string());
    ml::writeDatasetBinaryFile(data, binPath.string());
    const double datasetCsv = secondsFor(
        [&] { (void)ml::readDatasetFile(csvPath.string()); }, iters);
    const double datasetBin = secondsFor(
        [&] { (void)ml::readDatasetBinaryFile(binPath.string()); },
        iters);

    // --- model: tree fit vs. binary reload of the fitted tree ---
    ml::DecisionTreeParams treeParams;
    ml::DecisionTreeRegressor tree(treeParams);
    const double modelFit = secondsFor(
        [&] {
            ml::DecisionTreeRegressor t(treeParams);
            t.fit(data);
        },
        std::max(1L, iters / 10));
    tree.fit(data);
    const std::string modelBlob = ml::treeToBinary(tree);
    const double modelLoad = secondsFor(
        [&] { (void)ml::treeFromBinary(modelBlob, "bench"); }, iters);

    const auto perRepUs = [](double seconds, long reps) {
        return 1e6 * seconds / static_cast<double>(reps);
    };
    struct Line
    {
        const char* name;
        double coldUs;
        double warmUs;
        const char* gauge;
    };
    const Line lines[] = {
        {"campaign(91) collect vs record load", campaignCold * 1e6,
         campaignWarm * 1e6, "campaign"},
        {"trace serialize vs parse", perRepUs(traceSerialize, iters),
         perRepUs(traceParse, iters), "trace"},
        {"dataset CSV read vs binary read", perRepUs(datasetCsv, iters),
         perRepUs(datasetBin, iters), "dataset"},
        {"tree fit vs binary reload",
         perRepUs(modelFit, std::max(1L, iters / 10)),
         perRepUs(modelLoad, iters), "model"},
    };

    TextTable table("artifact cache: cold compute vs. warm load");
    table.setHeader({"path", "cold us", "warm us", "speedup"});
    for (const auto& line : lines) {
        const double speedup =
            line.warmUs > 0.0 ? line.coldUs / line.warmUs : 0.0;
        table.addRow({line.name, formatDouble(line.coldUs, 1),
                      formatDouble(line.warmUs, 1),
                      formatDouble(speedup, 1) + "x"});
        const std::string prefix =
            std::string("bench.cache.") + line.gauge;
        setGauge(prefix + ".cold_us", line.coldUs);
        setGauge(prefix + ".warm_us", line.warmUs);
        setGauge(prefix + ".speedup", speedup);
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nblob sizes: trace %zu B, dataset %zu B (csv %ju B), "
                "model %zu B\n",
                traceBlob.size(), dataBlob.size(),
                static_cast<std::uintmax_t>(fs::file_size(csvPath)),
                modelBlob.size());
    setGauge("bench.cache.trace.blob_bytes",
             static_cast<double>(traceBlob.size()));
    setGauge("bench.cache.dataset.blob_bytes",
             static_cast<double>(dataBlob.size()));
    setGauge("bench.cache.model.blob_bytes",
             static_cast<double>(modelBlob.size()));

    cache.setDirectory("");
    fs::remove_all(root);
    return 0;
}
