/**
 * @file
 * Figure 6: effect of the CPU time feature. For every base feature
 * combination in the sensitivity sweep, reports the LOOCV error without
 * and with CPU time added to the feature vector.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 6 - effect of CPU time on the prediction error");

    TextTable table("LOOCV relative error without / with cpu_time");
    table.setHeader({"base combination", "without(%)", "with(%)",
                     "delta(%)"});
    for (const auto& base : predictor::sensitivityBaseSchemes()) {
        const double without = bench::schemeLoocvError(base);
        const double with = bench::schemeLoocvError(base.with("cpu"));
        table.addRow({base.name, formatDouble(without, 2),
                      formatDouble(with, 2),
                      formatDouble(with - without, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
