/**
 * @file
 * google-benchmark microbenchmarks of the vision substrate: per-kernel
 * wall-clock throughput of the real algorithm implementations (these
 * time the host execution of the kernels themselves, not the simulated
 * GPU/CPU — useful for keeping the data-collection pipeline fast).
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "vision/facedet.h"
#include "vision/fast.h"
#include "vision/hog.h"
#include "vision/image.h"
#include "vision/knn.h"
#include "vision/ops.h"
#include "vision/orb.h"
#include "vision/sift.h"
#include "vision/surf.h"
#include "vision/svm.h"

namespace {

using namespace mapp;
using namespace mapp::vision;

Image
benchScene(int size)
{
    Rng rng(42);
    return synth::scene(size, size, rng);
}

void
BM_GaussianBlur(benchmark::State& state)
{
    const Image img = benchScene(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(ops::gaussianBlur(img, 1.6f));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(img.pixels()));
}
BENCHMARK(BM_GaussianBlur)->Arg(96)->Arg(192);

void
BM_IntegralImage(benchmark::State& state)
{
    const Image img = benchScene(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(ops::integral(img));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(img.pixels()));
}
BENCHMARK(BM_IntegralImage)->Arg(96)->Arg(192);

void
BM_Sobel(benchmark::State& state)
{
    const Image img = benchScene(static_cast<int>(state.range(0)));
    Image gx, gy;
    for (auto _ : state) {
        ops::sobel(img, gx, gy);
        benchmark::DoNotOptimize(gx);
    }
}
BENCHMARK(BM_Sobel)->Arg(192);

void
BM_FastDetect(benchmark::State& state)
{
    const Image img = benchScene(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(detectFast(img));
}
BENCHMARK(BM_FastDetect)->Arg(96)->Arg(192);

void
BM_OrbDetect(benchmark::State& state)
{
    const Image img = benchScene(192);
    for (auto _ : state)
        benchmark::DoNotOptimize(detectOrb(img));
}
BENCHMARK(BM_OrbDetect);

void
BM_SiftDetect(benchmark::State& state)
{
    const Image img = benchScene(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(detectSift(img));
}
BENCHMARK(BM_SiftDetect)->Arg(96)->Arg(192);

void
BM_SurfDetect(benchmark::State& state)
{
    const Image img = benchScene(192);
    for (auto _ : state)
        benchmark::DoNotOptimize(detectSurf(img));
}
BENCHMARK(BM_SurfDetect);

void
BM_Hog(benchmark::State& state)
{
    const Image img = benchScene(192);
    for (auto _ : state)
        benchmark::DoNotOptimize(computeHog(img));
}
BENCHMARK(BM_Hog);

void
BM_FaceDetect(benchmark::State& state)
{
    Rng rng(7);
    const Image img = synth::facesScene(192, 192, rng, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(detectFaces(img));
}
BENCHMARK(BM_FaceDetect);

void
BM_SvmTrain(benchmark::State& state)
{
    Rng rng(11);
    std::vector<Descriptor> xs;
    std::vector<int> ys;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        Descriptor d(64);
        for (auto& v : d)
            v = static_cast<float>(rng.normal());
        xs.push_back(std::move(d));
        ys.push_back(i % 2 == 0 ? 1 : -1);
    }
    for (auto _ : state) {
        LinearSvm svm;
        svm.train(xs, ys);
        benchmark::DoNotOptimize(svm);
    }
}
BENCHMARK(BM_SvmTrain)->Arg(64)->Arg(256);

void
BM_KnnPredict(benchmark::State& state)
{
    Rng rng(13);
    const auto n = static_cast<int>(state.range(0));
    std::vector<Descriptor> refs;
    std::vector<int> labels;
    for (int i = 0; i < n; ++i) {
        Descriptor d(64);
        for (auto& v : d)
            v = static_cast<float>(rng.normal());
        refs.push_back(std::move(d));
        labels.push_back(i % 2 == 0 ? 1 : -1);
    }
    std::vector<Descriptor> queries(refs.begin(),
                                    refs.begin() + n / 4);
    KnnClassifier knn;
    knn.fit(refs, labels);
    for (auto _ : state)
        benchmark::DoNotOptimize(knn.predict(queries));
}
BENCHMARK(BM_KnnPredict)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
