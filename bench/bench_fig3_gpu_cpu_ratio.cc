/**
 * @file
 * Figure 3: GPU / CPU performance with multi-application concurrency.
 * For every benchmark and instance count, the ratio of GPU performance
 * to CPU performance (values > 1 mean the GPU wins). The paper found
 * the GPU ahead for most single-instance runs (exceptions: FAST, ORB,
 * SVM) but scaling worse as instances are added.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 3 - GPU/CPU performance ratio vs. instance count");

    constexpr int kMaxInstances = 4;
    TextTable table("GPU/CPU performance ratio (>1: GPU wins)");
    table.setHeader({"bench", "1", "2", "3", "4"});

    std::vector<Bar> singleInstance;
    for (auto id : vision::kAllBenchmarks) {
        const auto cpu =
            bench::collector().cpuHomogeneousScaling({id, 20},
                                                     kMaxInstances);
        const auto gpu =
            bench::collector().gpuHomogeneousScaling({id, 20},
                                                     kMaxInstances);
        std::vector<double> series;
        for (int k = 0; k < kMaxInstances; ++k)
            series.push_back(cpu[static_cast<std::size_t>(k)] /
                             gpu[static_cast<std::size_t>(k)]);
        table.addRow(vision::benchmarkName(id), series, 3);
        singleInstance.push_back(
            {vision::benchmarkName(id), series[0]});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n",
                renderBarChart("single-instance GPU/CPU ratio",
                               singleInstance, 40, "x")
                    .c_str());
    return 0;
}
