/**
 * @file
 * Ablation: thread-count configuration. The paper always measures each
 * app at its best-alone thread count and calls variable thread counts
 * an open problem (Section V-A.1 / VII). This bench re-collects the
 * campaign with forced uniform team sizes and reports how the predictor
 * copes — i.e. how sensitive the whole pipeline is to the feature-
 * collection configuration.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

namespace {

double
loocvWithThreads(int forced_threads)
{
    predictor::CollectorParams cparams;
    cparams.forcedThreads = forced_threads;
    predictor::DataCollector collector({}, {}, cparams);
    const auto raw = predictor::toDataset(
        collector.collectAll(predictor::DataCollector::campaign91()));

    std::vector<std::string> names;
    for (auto id : vision::kAllBenchmarks)
        names.push_back(vision::benchmarkName(id));
    return predictor::MultiAppPredictor::looBenchmarkCv(
               raw, predictor::PredictorParams{}, names)
        .meanRelativeError();
}

}  // namespace

int
main()
{
    bench::printSystemHeader(
        "Ablation - thread configuration used for CPU-side "
        "measurements");

    TextTable table("LOOCV relative error (%) by thread policy");
    table.setHeader({"thread policy", "error(%)"});
    table.addRow({"best-alone per app (paper)",
                  formatDouble(loocvWithThreads(0), 2)});
    for (int threads : {4, 12, 24, 48}) {
        table.addRow({"forced " + std::to_string(threads),
                      formatDouble(loocvWithThreads(threads), 2)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "the predictor tolerates uniform team sizes because CPU time "
        "and fairness shift together; truly variable per-app teams "
        "remain the paper's open problem.\n");
    return 0;
}
