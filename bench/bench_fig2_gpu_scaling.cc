/**
 * @file
 * Figure 2: GPU performance with multi-application concurrency. Same
 * experiment as Figure 1 but on the MPS GPU simulator: per-instance
 * performance normalized to the single-instance run, expected to
 * degrade clearly with the number of co-resident clients.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 2 - GPU performance vs. homogeneous instance count "
        "(normalized to 1 instance)");

    constexpr int kMaxInstances = 4;
    std::vector<std::string> groups;
    std::vector<std::vector<double>> values;
    TextTable table("normalized GPU performance (higher is better)");
    table.setHeader({"bench", "1", "2", "3", "4"});

    for (auto id : vision::kAllBenchmarks) {
        const auto times =
            bench::collector().gpuHomogeneousScaling({id, 20},
                                                     kMaxInstances);
        std::vector<double> series;
        for (double t : times)
            series.push_back(times[0] / t);
        table.addRow(vision::benchmarkName(id), series, 3);
        groups.push_back(vision::benchmarkName(id));
        values.push_back(series);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n",
                renderGroupedBars("", groups, {"1", "2", "3", "4"},
                                  values, 40)
                    .c_str());
    return 0;
}
