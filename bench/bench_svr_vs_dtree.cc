/**
 * @file
 * Section V-D's model comparison: the decision tree vs. SVR (and, as
 * extra context, linear regression and a random forest) on the full
 * feature vector under the paper's LOOCV. The paper reports SVR's
 * error at ~10x the decision tree's on this sparse dataset.
 */

#include <cstdio>

#include "bench/harness.h"
#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/svr.h"

using namespace mapp;

namespace {

/** LOOCV with an arbitrary regressor over the normalized full vector. */
template <typename MakeModel>
double
loocvWith(MakeModel make)
{
    const auto& raw = bench::campaignDataset();
    const auto scheme = predictor::fullScheme();
    double errSum = 0.0;
    int folds = 0;
    for (const auto& bench : bench::benchmarkNames()) {
        auto [train, test] = predictor::splitOutBenchmark(raw, bench);
        if (train.empty() || test.empty())
            continue;
        const auto trainProj = train.selectFeatures(scheme.featureNames());
        const auto testProj = test.selectFeatures(scheme.featureNames());
        predictor::RangeNormalizer norm;
        norm.fit(trainProj);
        const auto trainNorm = norm.apply(trainProj);
        const auto testNorm = norm.apply(testProj);

        auto model = make();
        model.fit(trainNorm);
        const auto predictions = model.predict(testNorm);
        errSum += ml::meanRelativeErrorPercent(testNorm.targets(),
                                               predictions);
        ++folds;
    }
    return folds ? errSum / folds : 0.0;
}

}  // namespace

int
main()
{
    bench::printSystemHeader(
        "Section V-D - regression model comparison (full features, "
        "LOOCV)");

    const double dtree =
        loocvWith([] { return ml::DecisionTreeRegressor{}; });
    const double svr = loocvWith([] { return ml::SvrRegressor{}; });
    const double linear =
        loocvWith([] { return ml::LinearRegression{}; });
    const double forest =
        loocvWith([] { return ml::RandomForestRegressor{}; });

    TextTable table("model errors");
    table.setHeader({"model", "LOOCV error(%)", "vs decision tree"});
    table.addRow({"decision tree", formatDouble(dtree, 2), "1.0x"});
    table.addRow({"SVR (RBF)", formatDouble(svr, 2),
                  formatDouble(svr / dtree, 1) + "x"});
    table.addRow({"linear regression", formatDouble(linear, 2),
                  formatDouble(linear / dtree, 1) + "x"});
    table.addRow({"random forest", formatDouble(forest, 2),
                  formatDouble(forest / dtree, 1) + "x"});
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: SVR error ~10x the decision tree's; measured "
                "%.1fx\n",
                svr / dtree);
    return 0;
}
