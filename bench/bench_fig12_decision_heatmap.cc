/**
 * @file
 * Figure 12: snapshot of the per-test-point feature-usage heatmap. One
 * row per LOOCV test point (the first 26, like the paper's t1..t26),
 * one column per base feature; cells count how often the feature is
 * used on that point's decision path.
 */

#include <cstdio>

#include "bench/harness.h"
#include "predictor/decision_analysis.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 12 - heatmap of feature usage per test point (first 26 "
        "points)");

    const auto stats = predictor::analyzeDecisionPaths(
        bench::campaignDataset(), predictor::PredictorParams{},
        bench::benchmarkNames());

    TextTable table("decision-node usage counts (t1..t26)");
    std::vector<std::string> header{"test point"};
    for (const auto& f : stats.features)
        header.push_back(f);
    table.setHeader(header);

    const std::size_t shown =
        std::min<std::size_t>(stats.points.size(), 26);
    for (std::size_t i = 0; i < shown; ++i) {
        const auto& point = stats.points[i];
        std::vector<std::string> row{"t" + std::to_string(i + 1) + " (" +
                                     point.pointLabel + ")"};
        for (const auto& f : stats.features) {
            const auto it = point.counts.find(f);
            row.push_back(std::to_string(
                it == point.counts.end() ? 0 : it->second));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
