/**
 * @file
 * The prediction-service microbench: closed-loop clients against an
 * in-process PredictionService, sweeping the micro-batcher's linger
 * window against the number of concurrent clients. Reports sustained
 * rows/sec, mean end-to-end latency and the realized batch size per
 * configuration, next to the raw single-thread predict() floor. Every
 * number lands in the metrics sidecar (bench.serve.* gauges) so the
 * serving path's perf trajectory is measured, not asserted.
 *
 * Flags:
 *   --iters=<n>  per-configuration row budget (default 400; the
 *                bench_smoke ctest entry passes a tiny value so the
 *                whole path is compile- and run-checked in tier 1).
 */

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/parse.h"
#include "common/rng.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "predictor/predictor.h"
#include "serve/service.h"

using namespace mapp;

namespace {

/** Synthetic app with a normalized instruction mix. */
predictor::AppFeatures
syntheticApp(Rng& rng, int index)
{
    predictor::AppFeatures app;
    app.app = "app" + std::to_string(index % 7);
    app.batchSize = static_cast<int>(rng.uniformInt(1, 100));
    app.cpuTime = rng.uniform(0.01, 2.0);
    app.gpuTime = rng.uniform(0.01, 1.0);
    double total = 0.0;
    for (auto& m : app.mixPercent) {
        m = rng.uniform(0.0, 1.0);
        total += m;
    }
    for (auto& m : app.mixPercent)
        m = 100.0 * m / total;
    return app;
}

/**
 * A small synthetic campaign and model: the bench measures the service
 * machinery (queue, linger, batching, callbacks), not simulator or
 * training cost, so a fast deterministic model keeps every run cheap
 * and the per-prediction compute realistic (a trained tree walk).
 */
std::shared_ptr<const predictor::MultiAppPredictor>
syntheticModel()
{
    Rng rng(41);
    std::vector<predictor::DataPoint> points;
    points.reserve(64);
    for (int i = 0; i < 64; ++i) {
        predictor::DataPoint p;
        p.a = syntheticApp(rng, i);
        p.b = syntheticApp(rng, i + 3);
        p.fairness = rng.uniform(0.2, 1.0);
        p.gpuBagTime = p.a.gpuTime + p.b.gpuTime +
                       0.25 * p.fairness * p.a.gpuTime;
        points.push_back(std::move(p));
    }
    auto model = std::make_shared<predictor::MultiAppPredictor>();
    model->train(points);
    return model;
}

std::vector<predictor::BagQuery>
syntheticQueries(int n)
{
    Rng rng(42);
    std::vector<predictor::BagQuery> queries;
    queries.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        predictor::BagQuery q;
        q.a = syntheticApp(rng, i);
        q.b = syntheticApp(rng, i + 5);
        q.fairness = rng.uniform(0.2, 1.0);
        queries.push_back(std::move(q));
    }
    return queries;
}

struct ConfigResult
{
    double rowsPerSec = 0.0;
    double meanLatencyUs = 0.0;
    double meanBatchRows = 0.0;
};

/**
 * Closed-loop load: @p clients threads each submit one single-row job
 * at a time and wait for its answer before the next — the shape a
 * resident service actually sees, and the one where the linger window
 * trades per-request latency for batch size across clients.
 */
ConfigResult
runConfig(const std::shared_ptr<const predictor::MultiAppPredictor>&
              model,
          const std::vector<predictor::BagQuery>& queries,
          double lingerMs, int clients, long rowBudget)
{
    serve::ServiceOptions options;
    options.lingerMs = lingerMs;
    options.batchRows = 32;
    options.queueCapacityRows = 4096;
    serve::PredictionService service(model, nullptr, options);

    const double batchesBefore =
        obs::defaultRegistry().counter("serve.batches").value();
    const long perClient =
        std::max(1L, rowBudget / std::max(clients, 1));
    const long totalRows = perClient * clients;

    std::mutex latencyMutex;
    double latencySum = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            double mySum = 0.0;
            for (long j = 0; j < perClient; ++j) {
                const auto& query = queries[static_cast<std::size_t>(
                    (c * perClient + j) % static_cast<long>(
                                               queries.size()))];
                std::mutex m;
                std::condition_variable cv;
                bool answered = false;
                const auto sent = std::chrono::steady_clock::now();
                service.submit(
                    {query}, 0.0, [&](serve::JobResult result) {
                        if (!result.ok)
                            std::fprintf(stderr,
                                         "FATAL: serve bench job "
                                         "failed: %s\n",
                                         result.error.c_str());
                        std::lock_guard<std::mutex> lock(m);
                        answered = true;
                        cv.notify_one();
                    });
                {
                    std::unique_lock<std::mutex> lock(m);
                    cv.wait(lock, [&] { return answered; });
                }
                mySum += std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - sent)
                             .count();
            }
            std::lock_guard<std::mutex> lock(latencyMutex);
            latencySum += mySum;
        });
    for (auto& t : threads)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    service.drain();
    const double batches =
        obs::defaultRegistry().counter("serve.batches").value() -
        batchesBefore;

    ConfigResult result;
    result.rowsPerSec =
        elapsed > 0.0 ? static_cast<double>(totalRows) / elapsed : 0.0;
    result.meanLatencyUs = latencySum / static_cast<double>(totalRows);
    result.meanBatchRows =
        batches > 0.0 ? static_cast<double>(totalRows) / batches : 0.0;
    return result;
}

void
setGauge(const std::string& key, double value)
{
    obs::defaultRegistry().gauge(key).set(value);
}

}  // namespace

int
main(int argc, char** argv)
{
    long iters = 400;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--iters=", 0) == 0) {
            const auto v = parseBoundedInt(
                arg.substr(std::string("--iters=").size()), 1,
                1 << 24);
            if (!v) {
                std::fprintf(stderr, "error: bad --iters: %s\n",
                             v.error().message().c_str());
                return 1;
            }
            iters = v.value();
        } else {
            std::fprintf(stderr, "error: unknown flag '%s'\n",
                         arg.c_str());
            return 1;
        }
    }

    std::printf("== Prediction-service microbench - closed-loop "
                "clients vs. linger window ==\n\n");

    const auto model = syntheticModel();
    const auto queries = syntheticQueries(256);

    // The floor every configuration is measured against: one thread
    // calling the model directly, no queue, no batching, no wakeups.
    double directNs = 0.0;
    {
        const long reps = std::max(1L, iters);
        double sink = 0.0;
        const auto t0 = std::chrono::steady_clock::now();
        for (long r = 0; r < reps; ++r) {
            const auto& q =
                queries[static_cast<std::size_t>(r) % queries.size()];
            sink += model->predict(q.a, q.b, q.fairness);
        }
        const auto t1 = std::chrono::steady_clock::now();
        directNs = 1e9 *
                   std::chrono::duration<double>(t1 - t0).count() /
                   static_cast<double>(reps);
        if (sink == -1.0)  // keep the loop observable
            std::printf("%f\n", sink);
    }
    setGauge("bench.serve.direct_ns_per_pred", directNs);
    std::printf("direct predict() floor: %.0f ns/pred "
                "(single thread, no service)\n\n",
                directNs);

    const double lingers[] = {0.0, 1.0, 2.0, 5.0};
    const int clientCounts[] = {1, 4, 8};

    TextTable table("closed-loop service throughput / latency "
                    "(batch cap 32 rows)");
    table.setHeader({"linger ms", "clients", "rows/sec",
                     "mean latency us", "mean batch rows"});
    for (const double lingerMs : lingers) {
        for (const int clients : clientCounts) {
            const auto r =
                runConfig(model, queries, lingerMs, clients, iters);
            table.addRow({formatDouble(lingerMs, 1),
                          std::to_string(clients),
                          formatDouble(r.rowsPerSec, 0),
                          formatDouble(r.meanLatencyUs, 1),
                          formatDouble(r.meanBatchRows, 2)});
            const std::string prefix =
                "bench.serve.linger" +
                std::to_string(static_cast<int>(lingerMs * 10)) +
                ".clients" + std::to_string(clients);
            setGauge(prefix + ".rows_per_sec", r.rowsPerSec);
            setGauge(prefix + ".mean_latency_us", r.meanLatencyUs);
            setGauge(prefix + ".mean_batch_rows", r.meanBatchRows);
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "linger is the latency/batching trade: 0 ms answers each "
        "request alone, larger windows coalesce concurrent clients "
        "into one compiled predictBatch call.\n");
    return 0;
}
