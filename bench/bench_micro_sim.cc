/**
 * @file
 * The co-run simulation-engine microbench: raw event throughput of the
 * single-bag discrete-event engines (GPU MPS and CPU multicore) against
 * the in-process seed-loop transcription (sim/seed_reference.h — an A/B
 * under one machine state, immune to run-to-run machine drift), bag
 * throughput of the batch sweep path (serial loop vs. one parallelFor
 * sweep at the default thread count), and the cold end-to-end campaign
 * wall time (the number `mapp_cli collect` pays on a cold cache).
 * Every number lands in the metrics sidecar (bench.sim.* gauges) and,
 * with --json-out, in a standalone JSON snapshot so the engine's perf
 * trajectory is measured, not asserted.
 *
 * Flags:
 *   --iters=<n>     scale all repetition counts (default 200; the
 *                   bench_micro_sim_smoke ctest entry passes a tiny
 *                   value so the path is compile- and run-checked in
 *                   tier 1).
 *   --json-out=<f>  where to write the gauge snapshot (default
 *                   BENCH_sim.json; empty disables).
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/harness.h"
#include "cache/artifact_cache.h"
#include "common/parallel.h"
#include "common/parse.h"
#include "common/table.h"
#include "sim/seed_reference.h"
#include "vision/registry.h"

using namespace mapp;

namespace {

/** One-shot wall time of @p body in seconds. */
double
onceSeconds(const std::function<void()>& body)
{
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Time @p reps calls of @p body, splitting them into slices and
 * scaling the fastest slice to the full rep count (the same
 * noise-rejecting minimum estimator as the other microbenches).
 */
double
secondsFor(const std::function<void()>& body, long reps)
{
    constexpr long kSlices = 10;
    const long perSlice = std::max(1L, reps / kSlices);
    double best = 0.0;
    for (long done = 0; done < reps; done += perSlice) {
        const long n = std::min(perSlice, reps - done);
        const auto t0 = std::chrono::steady_clock::now();
        for (long r = 0; r < n; ++r)
            body();
        const auto t1 = std::chrono::steady_clock::now();
        const double perRep =
            std::chrono::duration<double>(t1 - t0).count() /
            static_cast<double>(n);
        if (best == 0.0 || perRep < best)
            best = perRep;
    }
    return best * static_cast<double>(reps);
}

void
setGauge(const std::string& key, double value)
{
    obs::defaultRegistry().gauge(key).set(value);
}

std::uint64_t
counterValue(const char* name)
{
    return obs::defaultRegistry().counter(name).value();
}

}  // namespace

int
main(int argc, char** argv)
{
    long iters = 200;
    std::string jsonOut = "BENCH_sim.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--iters=", 0) == 0) {
            const auto v = parseBoundedInt(
                arg.substr(std::string("--iters=").size()), 1, 1 << 24);
            if (!v) {
                std::fprintf(stderr, "error: bad --iters: %s\n",
                             v.error().message().c_str());
                return 1;
            }
            iters = v.value();
        } else if (arg.rfind("--json-out=", 0) == 0) {
            jsonOut = arg.substr(std::string("--json-out=").size());
        } else {
            std::fprintf(stderr, "error: unknown flag '%s'\n",
                         arg.c_str());
            return 1;
        }
    }

    bench::printSystemHeader(
        "Simulation-engine microbench - events/sec, bags/sec, cold "
        "campaign");

    // Point the process-wide artifact cache at a throwaway directory so
    // the cold-campaign measurement is genuinely cold and this bench
    // never pollutes a real ~/.cache/mapp.
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() /
        ("mapp_bench_sim_" + std::to_string(::getpid()));
    fs::remove_all(root);
    auto& cache = cache::defaultArtifactCache();
    cache.setDirectory(root.string());

    const auto& sift = vision::cachedTrace(vision::BenchmarkId::Sift, 40);
    const auto& orb = vision::cachedTrace(vision::BenchmarkId::Orb, 40);
    const auto& hog = vision::cachedTrace(vision::BenchmarkId::Hog, 20);
    const auto& fast = vision::cachedTrace(vision::BenchmarkId::Fast, 80);
    const gpusim::MpsSim gpu;
    const cpusim::MulticoreSim cpu;

    // --- single-bag engines: simulator events per second -------------
    const double gpuBagSec = secondsFor(
        [&] { (void)gpu.runShared({&sift, &orb}); }, iters);
    const double cpuBagSec = secondsFor(
        [&] { (void)cpu.runShared({&sift, &orb}, {8, 8}); }, iters);

    // Seed-loop baseline, timed in the same process and machine state:
    // the speedup ratio below is the honest before/after number (two
    // separate runs of this bench can drift ~20% on a shared host).
    const std::vector<const isa::WorkloadTrace*> abBag{&sift, &orb};
    const double gpuSeedSec = secondsFor(
        [&] {
            (void)sim::reference::runGpuSeedLoop(abBag, gpu.config());
        },
        iters);
    const double cpuSeedSec = secondsFor(
        [&] {
            (void)sim::reference::runCpuSeedLoop(abBag, {8, 8},
                                                 cpu.config());
        },
        iters);

    // Exact per-bag event counts from one counted run (the engines are
    // deterministic, so one run's count is every run's count).
    const std::uint64_t g0 = counterValue("gpusim.sim_events");
    (void)gpu.runShared({&sift, &orb});
    const double gpuPerBag =
        static_cast<double>(counterValue("gpusim.sim_events") - g0);
    const std::uint64_t c0 = counterValue("cpusim.sim_events");
    (void)cpu.runShared({&sift, &orb}, {8, 8});
    const double cpuPerBag =
        static_cast<double>(counterValue("cpusim.sim_events") - c0);

    const double gpuBagUs =
        1e6 * gpuBagSec / static_cast<double>(iters);
    const double cpuBagUs =
        1e6 * cpuBagSec / static_cast<double>(iters);
    const double gpuEventsPerSec = gpuPerBag / (gpuBagUs * 1e-6);
    const double cpuEventsPerSec = cpuPerBag / (cpuBagUs * 1e-6);

    const double gpuSeedUs =
        1e6 * gpuSeedSec / static_cast<double>(iters);
    const double cpuSeedUs =
        1e6 * cpuSeedSec / static_cast<double>(iters);
    const double gpuSeedEventsPerSec = gpuPerBag / (gpuSeedUs * 1e-6);
    const double cpuSeedEventsPerSec = cpuPerBag / (cpuSeedUs * 1e-6);
    const double gpuSpeedup = gpuSeedSec / gpuBagSec;
    const double cpuSpeedup = cpuSeedSec / cpuBagSec;

    // --- batch sweep: bags/sec, serial loop vs one parallel sweep ----
    std::vector<std::pair<const isa::WorkloadTrace*,
                          const isa::WorkloadTrace*>>
        bagList;
    const isa::WorkloadTrace* ring[] = {&sift, &orb, &hog, &fast};
    constexpr std::size_t kBatchBags = 64;
    for (std::size_t i = 0; i < kBatchBags; ++i)
        bagList.emplace_back(ring[i % 4], ring[(i + 1 + i / 4) % 4]);

    const long laps = std::max(1L, iters / 50);
    const double serialSec = secondsFor(
        [&] {
            for (const auto& [a, b] : bagList)
                (void)gpu.runShared({a, b});
        },
        laps);
    const double parallelSec = secondsFor(
        [&] {
            parallel::parallelFor(bagList.size(), [&](std::size_t i) {
                (void)gpu.runShared({bagList[i].first,
                                     bagList[i].second});
            });
        },
        laps);
    const double totalBags =
        static_cast<double>(kBatchBags) * static_cast<double>(laps);
    const double serialBagsPerSec = totalBags / serialSec;
    const double parallelBagsPerSec = totalBags / parallelSec;

    // --- cold campaign: the end-to-end `collect` cost ----------------
    std::vector<predictor::DataPoint> points;
    const double campaignCold = onceSeconds([&] {
        predictor::DataCollector cold;
        points = cold.collectAll(
            predictor::DataCollector::campaign91());
    });

    TextTable table("co-run simulation engine");
    table.setHeader({"path", "metric", "value"});
    table.addRow({"gpusim 2-app bag (seed loop)", "us/bag",
                  formatDouble(gpuSeedUs, 1)});
    table.addRow({"gpusim 2-app bag (seed loop)", "events/sec",
                  formatDouble(gpuSeedEventsPerSec / 1e6, 3) + "M"});
    table.addRow({"gpusim 2-app bag (engine)", "us/bag",
                  formatDouble(gpuBagUs, 1)});
    table.addRow({"gpusim 2-app bag (engine)", "events/sec",
                  formatDouble(gpuEventsPerSec / 1e6, 3) + "M"});
    table.addRow({"gpusim engine vs seed", "speedup",
                  formatDouble(gpuSpeedup, 2) + "x"});
    table.addRow({"cpusim 2-app bag (seed loop)", "us/bag",
                  formatDouble(cpuSeedUs, 1)});
    table.addRow({"cpusim 2-app bag (seed loop)", "events/sec",
                  formatDouble(cpuSeedEventsPerSec / 1e6, 3) + "M"});
    table.addRow({"cpusim 2-app bag (engine)", "us/bag",
                  formatDouble(cpuBagUs, 1)});
    table.addRow({"cpusim 2-app bag (engine)", "events/sec",
                  formatDouble(cpuEventsPerSec / 1e6, 3) + "M"});
    table.addRow({"cpusim engine vs seed", "speedup",
                  formatDouble(cpuSpeedup, 2) + "x"});
    table.addRow({"batch 64-bag sweep (serial)", "bags/sec",
                  formatDouble(serialBagsPerSec, 1)});
    table.addRow({"batch 64-bag sweep (parallel)", "bags/sec",
                  formatDouble(parallelBagsPerSec, 1)});
    table.addRow({"campaign(91) cold collect", "seconds",
                  formatDouble(campaignCold, 3)});
    std::printf("%s", table.render().c_str());
    std::printf("\nper-bag events: gpusim %.0f, cpusim %.0f | "
                "parallel lanes: %d\n",
                gpuPerBag, cpuPerBag, parallel::maxThreads());

    setGauge("bench.sim.gpu.bag_us", gpuBagUs);
    setGauge("bench.sim.gpu.events_per_sec", gpuEventsPerSec);
    setGauge("bench.sim.gpu.events_per_bag", gpuPerBag);
    setGauge("bench.sim.gpu.seed_bag_us", gpuSeedUs);
    setGauge("bench.sim.gpu.seed_events_per_sec", gpuSeedEventsPerSec);
    setGauge("bench.sim.gpu.speedup_vs_seed", gpuSpeedup);
    setGauge("bench.sim.cpu.bag_us", cpuBagUs);
    setGauge("bench.sim.cpu.events_per_sec", cpuEventsPerSec);
    setGauge("bench.sim.cpu.events_per_bag", cpuPerBag);
    setGauge("bench.sim.cpu.seed_bag_us", cpuSeedUs);
    setGauge("bench.sim.cpu.seed_events_per_sec", cpuSeedEventsPerSec);
    setGauge("bench.sim.cpu.speedup_vs_seed", cpuSpeedup);
    setGauge("bench.sim.batch.bags_per_sec_serial", serialBagsPerSec);
    setGauge("bench.sim.batch.bags_per_sec_parallel",
             parallelBagsPerSec);
    setGauge("bench.sim.batch.parallel_speedup",
             serialSec / parallelSec);
    setGauge("bench.sim.campaign_cold_s", campaignCold);

    if (!jsonOut.empty()) {
        if (!obs::defaultRegistry().writeJson(jsonOut))
            std::fprintf(stderr, "error: cannot write %s\n",
                         jsonOut.c_str());
        else
            std::printf("wrote %s\n", jsonOut.c_str());
    }

    cache.setDirectory("");
    fs::remove_all(root);
    return 0;
}
