/**
 * @file
 * Shared helpers for the figure/table bench binaries: one-time campaign
 * collection, the Table-III system header, and fold-error utilities.
 * Header-only; every bench binary is its own process and collects the
 * campaign once (a couple of seconds on the simulated testbed).
 */

#ifndef MAPP_BENCH_HARNESS_H
#define MAPP_BENCH_HARNESS_H

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"
#include "predictor/schemes.h"

namespace mapp::bench {

/** The process-wide data collector (memoizes per-app measurements). */
inline predictor::DataCollector&
collector()
{
    static predictor::DataCollector instance;
    return instance;
}

/** The 91-run campaign, collected once per process. */
inline const std::vector<predictor::DataPoint>&
campaignPoints()
{
    static const std::vector<predictor::DataPoint> points =
        collector().collectAll(predictor::DataCollector::campaign91());
    return points;
}

/** The campaign as a raw (unnormalized) dataset. */
inline const ml::Dataset&
campaignDataset()
{
    static const ml::Dataset data =
        predictor::toDataset(campaignPoints());
    return data;
}

/** Paper-order benchmark display names. */
inline std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (auto id : vision::kAllBenchmarks)
        names.push_back(vision::benchmarkName(id));
    return names;
}

/** Print the simulated Table-III baseline configuration. */
inline void
printSystemHeader(const std::string& title)
{
    const auto& cpu = collector().cpuSim().config();
    const auto& gpu = collector().gpuSim().config();
    std::printf("== %s ==\n", title.c_str());
    std::printf(
        "simulated testbed (Table III): CPU %d cores x %d-way SMT @ "
        "%.1f GHz, %.0f MiB LLC, %.0f GB/s | GPU %d SMs x %d cores @ "
        "%.2f GHz, %llu MiB L2, %.0f GB/s, MPS enabled\n\n",
        cpu.physicalCores, cpu.smtWays, cpu.frequency / 1e9,
        static_cast<double>(cpu.llcSize) / (1 << 20),
        cpu.memBandwidth / 1e9, gpu.numSms, gpu.coresPerSm,
        gpu.frequency / 1e9,
        static_cast<unsigned long long>(gpu.l2Size >> 20),
        gpu.memBandwidth / 1e9);
}

/** LOOCV mean relative error of a feature scheme on the campaign. */
inline double
schemeLoocvError(const predictor::FeatureScheme& scheme)
{
    predictor::PredictorParams params;
    params.scheme = scheme;
    return predictor::MultiAppPredictor::looBenchmarkCv(
               campaignDataset(), params, benchmarkNames())
        .meanRelativeError();
}

}  // namespace mapp::bench

#endif  // MAPP_BENCH_HARNESS_H
