/**
 * @file
 * Shared helpers for the figure/table bench binaries: one-time campaign
 * collection, the Table-III system header, and fold-error utilities.
 * Header-only; every bench binary is its own process and collects the
 * campaign once (a couple of seconds on the simulated testbed).
 */

#ifndef MAPP_BENCH_HARNESS_H
#define MAPP_BENCH_HARNESS_H

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"
#include "predictor/schemes.h"

namespace mapp::bench {

/**
 * Wall clock at static init of the bench binary; writeMetricsSidecar
 * measures the process lifetime against it, so every sidecar carries
 * the binary's total wall time under the stable key `bench.wall_ms`
 * (the trajectory key the bench tracking compares across commits).
 */
inline std::chrono::steady_clock::time_point
processStart()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

/**
 * Every bench binary including this header writes its metrics registry
 * to `<binary>.metrics.json` in the working directory at exit, so each
 * benchmark result gets a machine-readable sidecar (simulator event
 * counts, cache hit rates, tree-fit timings, total wall time) for
 * free. Set MAPP_METRICS_SIDECAR=0 to suppress it.
 */
inline void
writeMetricsSidecar()
{
    const char* toggle = std::getenv("MAPP_METRICS_SIDECAR");
    if (toggle != nullptr && std::string(toggle) == "0")
        return;
    obs::defaultRegistry()
        .gauge("bench.wall_ms")
        .set(std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - processStart())
                 .count());
    std::string name = "bench";
#ifdef __GLIBC__
    name = program_invocation_short_name;
#endif
    obs::defaultRegistry().writeJson(name + ".metrics.json");
}

namespace detail {

/** Registers the sidecar writer once per process at static init. */
struct MetricsSidecarHook
{
    MetricsSidecarHook()
    {
        // Touch the registry first so it outlives the atexit handler,
        // and pin the wall-clock start as early as possible.
        obs::defaultRegistry();
        processStart();
        std::atexit(writeMetricsSidecar);
    }
};

inline const MetricsSidecarHook metricsSidecarHook{};

}  // namespace detail

/** The process-wide data collector (memoizes per-app measurements). */
inline predictor::DataCollector&
collector()
{
    static predictor::DataCollector instance;
    return instance;
}

/** The 91-run campaign, collected once per process. */
inline const std::vector<predictor::DataPoint>&
campaignPoints()
{
    static const std::vector<predictor::DataPoint> points =
        collector().collectAll(predictor::DataCollector::campaign91());
    return points;
}

/** The campaign as a raw (unnormalized) dataset. */
inline const ml::Dataset&
campaignDataset()
{
    static const ml::Dataset data =
        predictor::toDataset(campaignPoints());
    return data;
}

/** Paper-order benchmark display names. */
inline std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (auto id : vision::kAllBenchmarks)
        names.push_back(vision::benchmarkName(id));
    return names;
}

/** Print the simulated Table-III baseline configuration. */
inline void
printSystemHeader(const std::string& title)
{
    const auto& cpu = collector().cpuSim().config();
    const auto& gpu = collector().gpuSim().config();
    std::printf("== %s ==\n", title.c_str());
    std::printf(
        "simulated testbed (Table III): CPU %d cores x %d-way SMT @ "
        "%.1f GHz, %.0f MiB LLC, %.0f GB/s | GPU %d SMs x %d cores @ "
        "%.2f GHz, %llu MiB L2, %.0f GB/s, MPS enabled\n\n",
        cpu.physicalCores, cpu.smtWays, cpu.frequency / 1e9,
        static_cast<double>(cpu.llcSize) / (1 << 20),
        cpu.memBandwidth / 1e9, gpu.numSms, gpu.coresPerSm,
        gpu.frequency / 1e9,
        static_cast<unsigned long long>(gpu.l2Size >> 20),
        gpu.memBandwidth / 1e9);
}

/** LOOCV mean relative error of a feature scheme on the campaign. */
inline double
schemeLoocvError(const predictor::FeatureScheme& scheme)
{
    predictor::PredictorParams params;
    params.scheme = scheme;
    return predictor::MultiAppPredictor::looBenchmarkCv(
               campaignDataset(), params, benchmarkNames())
        .meanRelativeError();
}

}  // namespace mapp::bench

#endif  // MAPP_BENCH_HARNESS_H
