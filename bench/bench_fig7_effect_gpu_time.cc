/**
 * @file
 * Figure 7: effect of the GPU time feature. Same sweep as Figure 6 but
 * adding the single-instance GPU time; the paper found this the most
 * powerful single addition (Insight 3).
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 7 - effect of GPU time on the prediction error");

    TextTable table("LOOCV relative error without / with gpu_time");
    table.setHeader({"base combination", "without(%)", "with(%)",
                     "delta(%)"});
    for (const auto& base : predictor::sensitivityBaseSchemes()) {
        const double without = bench::schemeLoocvError(base);
        const double with = bench::schemeLoocvError(base.with("gpu"));
        table.addRow({base.name, formatDouble(without, 2),
                      formatDouble(with, 2),
                      formatDouble(with - without, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
