/**
 * @file
 * Figure 11: the radar plot of per-test-point feature usage frequency.
 * For every feature, prints the distribution of how many times it is
 * tested along a test point's decision path (mean, max, and the ring
 * histogram the radar plot encodes). The paper's reading: GPU time is
 * used 5-6 times per point, fairness 1-3 times on ~65% of points.
 */

#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "predictor/decision_analysis.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 11 - per-test-point feature usage frequency (radar "
        "plot data)");

    const auto stats = predictor::analyzeDecisionPaths(
        bench::campaignDataset(), predictor::PredictorParams{},
        bench::benchmarkNames());

    // Histogram usage counts per feature (radar rings 0..max).
    TextTable table("usage count distribution over " +
                    std::to_string(stats.points.size()) +
                    " test points");
    table.setHeader({"feature", "mean", "max", "ring histogram 0|1|2|..."});
    for (const auto& feature : stats.features) {
        std::map<int, int> hist;
        for (const auto& point : stats.points) {
            const auto it = point.counts.find(feature);
            hist[it == point.counts.end() ? 0 : it->second] += 1;
        }
        std::string rings;
        for (int ring = 0; ring <= stats.maxUsage.at(feature); ++ring) {
            if (ring)
                rings += " | ";
            rings += std::to_string(ring) + ":" +
                     std::to_string(hist.count(ring) ? hist[ring] : 0);
        }
        table.addRow({feature,
                      formatDouble(stats.meanUsage.at(feature), 2),
                      std::to_string(stats.maxUsage.at(feature)), rings});
    }
    std::printf("%s\n", table.render().c_str());

    std::vector<Bar> bars;
    for (const auto& feature : stats.features)
        bars.push_back({feature, stats.meanUsage.at(feature)});
    std::printf("%s\n",
                renderBarChart("mean uses per decision path", bars, 40)
                    .c_str());
    return 0;
}
