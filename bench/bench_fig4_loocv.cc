/**
 * @file
 * Figure 4: leave-one-out cross-validation error. For every benchmark,
 * all campaign bags involving it are held out, the full-feature
 * decision tree is trained on the rest, and the relative error on the
 * held-out bags is reported; the x-axis label is the left-out
 * benchmark. The paper reports a 9% mean.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 4 - relative error for leave-one-out cross validation");

    const auto cv = predictor::MultiAppPredictor::looBenchmarkCv(
        bench::campaignDataset(), predictor::PredictorParams{},
        bench::benchmarkNames());

    std::vector<Bar> bars;
    TextTable table("LOOCV relative error per left-out benchmark");
    table.setHeader({"left-out bench", "error(%)", "test points"});
    for (const auto& fold : cv.folds) {
        table.addRow({fold.label, formatDouble(fold.meanRelativeError, 2),
                      std::to_string(fold.testPoints)});
        bars.push_back({fold.label, fold.meanRelativeError});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n",
                renderBarChart("LOOCV relative error", bars, 40, "%")
                    .c_str());
    std::printf("mean LOOCV relative error: %.2f%%  (paper: ~9%%)\n",
                cv.meanRelativeError());
    return 0;
}
