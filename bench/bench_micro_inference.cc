/**
 * @file
 * The inference-engine microbench: single-sample latency and batch
 * throughput of tree/forest prediction on the fig4 campaign dataset,
 * seed-style per-row node walk vs. the compiled SoA engines. Every
 * number lands in the metrics sidecar (bench.inference.* gauges) so
 * the perf trajectory of the serving path is measured, not asserted.
 *
 * Flags:
 *   --iters=<n>     scale all repetition counts (default 2000; the
 *                   bench_smoke ctest entry passes a tiny value so the
 *                   whole path is compile- and run-checked in tier 1).
 *   --json-out=<f>  where to write the gauge snapshot (default
 *                   BENCH_inference.json; empty disables). This is the
 *                   tracked perf-trajectory artifact — the sidecar
 *                   <binary>.metrics.json still appears independently.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/parallel.h"
#include "common/parse.h"
#include "common/simd.h"
#include "ml/compiled_tree.h"
#include "ml/random_forest.h"
#include "obs/audit.h"
#include "predictor/predictor.h"

using namespace mapp;

namespace {

/** Trees in the benchmark forest (the acceptance target's size). */
constexpr int kForestSize = 50;

/** Rows in the replicated "serving-scale" batch. */
constexpr std::size_t kServingRows = 8192;

/**
 * Time @p reps calls of @p body, splitting them into slices and
 * scaling the fastest slice to the full rep count. The minimum is the
 * standard noise-rejecting estimator on a shared machine: scheduler
 * preemption and frequency wobble only ever ADD time, so the fastest
 * slice is the closest observation of the true cost.
 */
double
secondsFor(const std::function<void()>& body, long reps)
{
    constexpr long kSlices = 15;
    const long perSlice = std::max(1L, reps / kSlices);
    double best = 0.0;
    for (long done = 0; done < reps; done += perSlice) {
        const long n = std::min(perSlice, reps - done);
        const auto t0 = std::chrono::steady_clock::now();
        for (long r = 0; r < n; ++r)
            body();
        const auto t1 = std::chrono::steady_clock::now();
        const double perRep =
            std::chrono::duration<double>(t1 - t0).count() /
            static_cast<double>(n);
        if (best == 0.0 || perRep < best)
            best = perRep;
    }
    return best * static_cast<double>(reps);
}

void
setGauge(const std::string& key, double value)
{
    obs::defaultRegistry().gauge(key).set(value);
}

}  // namespace

int
main(int argc, char** argv)
{
    long iters = 2000;
    std::string jsonOut = "BENCH_inference.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json-out=", 0) == 0) {
            jsonOut = arg.substr(std::string("--json-out=").size());
        } else if (arg.rfind("--iters=", 0) == 0) {
            const auto v = parseBoundedInt(
                arg.substr(std::string("--iters=").size()), 1,
                1 << 24);
            if (!v) {
                std::fprintf(stderr, "error: bad --iters: %s\n",
                             v.error().message().c_str());
                return 1;
            }
            iters = v.value();
        } else {
            std::fprintf(stderr, "error: unknown flag '%s'\n",
                         arg.c_str());
            return 1;
        }
    }

    bench::printSystemHeader(
        "Inference microbench - node walk vs. compiled SoA engine");

    const auto& raw = bench::campaignDataset();
    const std::size_t nRows = raw.size();
    const std::size_t nFeatures = raw.numFeatures();

    ml::DecisionTreeRegressor tree;
    tree.fit(raw);
    const ml::CompiledTree compiledTree(tree);

    ml::RandomForestParams fp;
    fp.numTrees = kForestSize;
    ml::RandomForestRegressor forest(fp);
    forest.fit(raw);
    const ml::CompiledForest compiledForest(forest);

    // Flat row-major buffers: the campaign batch and a replicated
    // serving-scale batch (the campaign tiled to kServingRows rows).
    const auto flat = raw.toRowMajor();
    std::vector<double> servingFlat;
    servingFlat.reserve(kServingRows * nFeatures);
    while (servingFlat.size() < kServingRows * nFeatures) {
        const std::size_t want =
            kServingRows * nFeatures - servingFlat.size();
        servingFlat.insert(
            servingFlat.end(), flat.begin(),
            want >= flat.size() ? flat.end()
                                : flat.begin() + static_cast<long>(want));
    }

    // Correctness gate first: the compiled engines must agree with
    // the node-walk oracle on every campaign row before any timing
    // is worth reporting.
    {
        const auto treeOracle = tree.predict(raw);
        const auto forestOracle = forest.predict(raw);
        if (compiledTree.predict(raw) != treeOracle ||
            compiledForest.predict(raw) != forestOracle) {
            std::fprintf(stderr,
                         "FATAL: compiled predictions diverge from the "
                         "node-walk oracle\n");
            return 1;
        }
    }

    std::vector<double> out(nRows);
    std::vector<double> servingOut(kServingRows);
    const long singleReps = iters;
    const long batchReps = iters;
    const long servingReps = std::max(1L, iters / 16);

    // --- single-sample latency (one prediction per call) ---
    const double treeSingleRef = secondsFor(
        [&] {
            for (std::size_t i = 0; i < nRows; ++i)
                out[i] = tree.predict(raw.row(i));
        },
        singleReps);
    const double treeSingleCompiled = secondsFor(
        [&] {
            for (std::size_t i = 0; i < nRows; ++i)
                out[i] = compiledTree.predict(raw.row(i));
        },
        singleReps);
    const double forestSingleRef = secondsFor(
        [&] {
            for (std::size_t i = 0; i < nRows; ++i)
                out[i] = forest.predict(raw.row(i));
        },
        singleReps);
    const double forestSingleCompiled = secondsFor(
        [&] {
            for (std::size_t i = 0; i < nRows; ++i)
                out[i] = compiledForest.predict(raw.row(i));
        },
        singleReps);

    // --- batch throughput on the campaign dataset ---
    // The reference is the seed shape: every row re-walks the whole
    // ensemble through the pointer-heavy nodes.
    const double forestBatchRef = secondsFor(
        [&] {
            for (std::size_t i = 0; i < nRows; ++i)
                out[i] = forest.predict(raw.row(i));
        },
        batchReps);
    const double forestBatchCompiled = secondsFor(
        [&] { compiledForest.predictBatch(flat, nFeatures, out); },
        batchReps);
    const double treeBatchRef = secondsFor(
        [&] {
            for (std::size_t i = 0; i < nRows; ++i)
                out[i] = tree.predict(raw.row(i));
        },
        batchReps);
    const double treeBatchCompiled = secondsFor(
        [&] { compiledTree.predictBatch(flat, nFeatures, out); },
        batchReps);

    // --- serving-scale batch (campaign tiled to kServingRows) ---
    const double servingRef = secondsFor(
        [&] {
            for (std::size_t i = 0; i < kServingRows; ++i)
                servingOut[i] = forest.predict(std::span<const double>(
                    servingFlat.data() + i * nFeatures, nFeatures));
        },
        servingReps);
    const double servingCompiled = secondsFor(
        [&] {
            compiledForest.predictBatch(servingFlat, nFeatures,
                                        servingOut);
        },
        servingReps);

    const auto perPredNs = [](double seconds, long reps,
                              std::size_t rows) {
        return 1e9 * seconds /
               (static_cast<double>(reps) * static_cast<double>(rows));
    };
    struct Line
    {
        const char* name;
        double refNs;
        double engineNs;
        const char* gauge;
    };
    const Line lines[] = {
        {"tree single-sample", perPredNs(treeSingleRef, singleReps, nRows),
         perPredNs(treeSingleCompiled, singleReps, nRows),
         "tree.single"},
        {"forest(50) single-sample",
         perPredNs(forestSingleRef, singleReps, nRows),
         perPredNs(forestSingleCompiled, singleReps, nRows),
         "forest.single"},
        {"tree batch(91)", perPredNs(treeBatchRef, batchReps, nRows),
         perPredNs(treeBatchCompiled, batchReps, nRows), "tree.batch"},
        {"forest(50) batch(91)",
         perPredNs(forestBatchRef, batchReps, nRows),
         perPredNs(forestBatchCompiled, batchReps, nRows),
         "forest.batch"},
        {"forest(50) batch(8192)",
         perPredNs(servingRef, servingReps, kServingRows),
         perPredNs(servingCompiled, servingReps, kServingRows),
         "forest.serving"},
    };

    TextTable table("inference latency / throughput (" +
                    std::to_string(parallel::maxThreads()) +
                    " thread lanes)");
    table.setHeader({"path", "node walk ns/pred", "compiled ns/pred",
                     "speedup", "compiled preds/sec"});
    for (const auto& line : lines) {
        const double speedup =
            line.engineNs > 0.0 ? line.refNs / line.engineNs : 0.0;
        const double pps = 1e9 / line.engineNs;
        table.addRow({line.name, formatDouble(line.refNs, 1),
                      formatDouble(line.engineNs, 1),
                      formatDouble(speedup, 2) + "x",
                      formatDouble(pps, 0)});
        const std::string prefix =
            std::string("bench.inference.") + line.gauge;
        setGauge(prefix + ".ref_ns_per_pred", line.refNs);
        setGauge(prefix + ".compiled_ns_per_pred", line.engineNs);
        setGauge(prefix + ".speedup", speedup);
        setGauge(prefix + ".compiled_preds_per_sec", pps);
    }
    std::printf("%s\n", table.render().c_str());

    const double target = perPredNs(forestBatchRef, batchReps, nRows) /
                          perPredNs(forestBatchCompiled, batchReps,
                                    nRows);
    std::printf("forest(%d) campaign batch speedup: %.2fx "
                "(acceptance target: >= 5x)\n",
                kForestSize, target);

    // --- SIMD tier sweep: the compiled batch paths under every kernel
    // tier this CPU supports. All tiers are bit-identical by contract
    // (pinned by tests/test_simd.cc), so this is purely a throughput
    // comparison; the scalar row is the pre-SIMD compiled baseline.
    {
        TextTable sweep("compiled batch throughput by SIMD kernel tier");
        sweep.setHeader({"tier", "tree batch ns/pred",
                         "forest batch ns/pred",
                         "forest serving ns/pred",
                         "forest speedup vs scalar"});
        double scalarForestNs = 0.0;
        double bestForestNs = 0.0;
        const char* bestName = "scalar";
        for (simd::Tier t : simd::availableTiers()) {
            simd::setTier(t);
            // Warm the instruction paths and the node arrays once so
            // the first timed slice is not a cold-cache outlier.
            compiledForest.predictBatch(flat, nFeatures, out);
            const double treeNs = perPredNs(
                secondsFor(
                    [&] {
                        compiledTree.predictBatch(flat, nFeatures,
                                                  out);
                    },
                    batchReps),
                batchReps, nRows);
            const double forestNs = perPredNs(
                secondsFor(
                    [&] {
                        compiledForest.predictBatch(flat, nFeatures,
                                                    out);
                    },
                    batchReps),
                batchReps, nRows);
            const double servingNs = perPredNs(
                secondsFor(
                    [&] {
                        compiledForest.predictBatch(
                            servingFlat, nFeatures, servingOut);
                    },
                    servingReps),
                servingReps, kServingRows);
            const std::string tn = simd::tierName(t);
            setGauge("bench.inference.tree.batch." + tn +
                         "_ns_per_pred",
                     treeNs);
            setGauge("bench.inference.forest.batch." + tn +
                         "_ns_per_pred",
                     forestNs);
            setGauge("bench.inference.forest.serving." + tn +
                         "_ns_per_pred",
                     servingNs);
            if (t == simd::Tier::Scalar)
                scalarForestNs = forestNs;
            // availableTiers is narrowest-first, so the last row is
            // the widest (auto-selected) tier.
            bestForestNs = forestNs;
            bestName = simd::tierName(t);
            const double vsScalar =
                scalarForestNs > 0.0 && forestNs > 0.0
                    ? scalarForestNs / forestNs
                    : 1.0;
            sweep.addRow({tn, formatDouble(treeNs, 1),
                          formatDouble(forestNs, 1),
                          formatDouble(servingNs, 1),
                          formatDouble(vsScalar, 2) + "x"});
        }
        // Leave the process on the calibrated auto table, not the raw
        // widest tier the sweep ended on — on gather-slow hosts auto
        // keeps the scalar walk (see the calibration note in
        // common/simd.h) and the audit benchmark below should measure
        // the production configuration.
        simd::setTierFromName("auto");
        const double simdSpeedup =
            scalarForestNs > 0.0 && bestForestNs > 0.0
                ? scalarForestNs / bestForestNs
                : 0.0;
        setGauge("bench.inference.forest.batch.simd_speedup_vs_scalar",
                 simdSpeedup);
        std::printf("%s\n", sweep.render().c_str());
        std::printf("forest batch SIMD speedup (%s vs scalar): %.2fx "
                    "(acceptance target: >= 1.5x)\n",
                    bestName, simdSpeedup);
    }

    // --- audit overhead: the full predictDataset serving path with
    // the provenance log off vs. on at 1% sampling (the production
    // configuration). The acceptance bar is <= 2% throughput loss.
    {
        predictor::MultiAppPredictor model;
        model.train(raw);
        // Serving-scale evaluation set: the campaign tiled to
        // kServingRows rows. A 91-row batch finishes in ~10us, far
        // too small to resolve a sub-percent overhead; at 8192 rows
        // per call the ring wraps and per-batch noise amortizes.
        ml::Dataset servingSet(raw.featureNames());
        for (std::size_t i = 0; i < kServingRows; ++i) {
            const auto row = raw.row(i % nRows);
            servingSet.addRow(
                std::vector<double>(row.begin(), row.end()),
                raw.targets()[i % nRows]);
        }
        std::vector<double> preds;
        obs::PredictionLog& log = obs::predictionLog();
        // Single lane + interleaved A/B slices: pool scheduling and
        // frequency drift each add noise an order of magnitude larger
        // than the effect under test. One lane removes the scheduler;
        // alternating off/on slices exposes both variants to the same
        // drift, and the per-variant minimum rejects what remains.
        const int lanes = parallel::maxThreads();
        parallel::setMaxThreads(1);
        log.clear();
        log.setSamplePeriod(100);
        const long auditSlices = std::max(4L, iters / 8);
        std::vector<double> offTimes;
        std::vector<double> deltas;
        const auto timeOne = [&] {
            const auto t0 = std::chrono::steady_clock::now();
            preds = model.predictDataset(servingSet);
            const auto t1 = std::chrono::steady_clock::now();
            return std::chrono::duration<double>(t1 - t0).count();
        };
        for (long s = 0; s < auditSlices; ++s) {
            log.setEnabled(false);
            const double off = timeOne();
            log.setEnabled(true);
            const double on = timeOne();
            offTimes.push_back(off);
            // Adjacent off/on pair: both see the same drift, so their
            // difference isolates the audit cost; the median over
            // pairs rejects slices a neighbor perturbed.
            deltas.push_back(on - off);
        }
        log.setEnabled(false);
        log.setSamplePeriod(1);
        log.clear();
        parallel::setMaxThreads(lanes);
        std::sort(offTimes.begin(), offTimes.end());
        std::sort(deltas.begin(), deltas.end());
        const double offBest = offTimes.front();
        const double deltaMedian = deltas[deltas.size() / 2];
        const double offNs = perPredNs(offBest, 1, kServingRows);
        const double onNs =
            perPredNs(offBest + deltaMedian, 1, kServingRows);
        const double overheadPct =
            offNs > 0.0 ? (onNs - offNs) / offNs * 100.0 : 0.0;
        setGauge("bench.audit.off_ns_per_pred", offNs);
        setGauge("bench.audit.on_ns_per_pred", onNs);
        setGauge("bench.audit.overhead", overheadPct);
        std::printf("audit overhead (1%% sampling): %.1f -> %.1f "
                    "ns/pred, %+.2f%%\n",
                    offNs, onNs, overheadPct);
    }

    if (!jsonOut.empty()) {
        if (!obs::defaultRegistry().writeJson(jsonOut))
            std::fprintf(stderr, "warning: could not write %s\n",
                         jsonOut.c_str());
    }
    return 0;
}
