/**
 * @file
 * Figure 8: effect of the instruction mix. Time/fairness feature
 * combinations evaluated without and with the full instruction mix
 * added; the paper found the mix helps alongside CPU time but adds
 * little on top of GPU time.
 */

#include <cstdio>

#include "bench/harness.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Figure 8 - effect of the instruction mix on the prediction "
        "error");

    std::vector<predictor::FeatureScheme> bases;
    {
        predictor::FeatureScheme s;
        s.name = "cpu";
        s.cpuTime = true;
        bases.push_back(s);
        bases.push_back(s.with("fairness"));
    }
    {
        predictor::FeatureScheme s;
        s.name = "gpu";
        s.gpuTime = true;
        bases.push_back(s);
        bases.push_back(s.with("fairness"));
    }
    {
        predictor::FeatureScheme s;
        s.name = "cpu+gpu";
        s.cpuTime = true;
        s.gpuTime = true;
        bases.push_back(s);
        bases.push_back(s.with("fairness"));
    }

    TextTable table("LOOCV relative error without / with insmix");
    table.setHeader({"base combination", "without(%)", "with(%)",
                     "delta(%)"});
    for (const auto& base : bases) {
        const double without = bench::schemeLoocvError(base);
        const double with = bench::schemeLoocvError(base.with("insmix"));
        table.addRow({base.name, formatDouble(without, 2),
                      formatDouble(with, 2),
                      formatDouble(with - without, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
