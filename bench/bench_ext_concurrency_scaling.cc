/**
 * @file
 * Extension (the paper's open problem, Section VII): bags of more than
 * two applications. Trains the standard 2-app predictor, then measures
 * how the simulated GPU behaves for 3- and 4-app homogeneous bags and
 * how far a naive extrapolation of the 2-app predictor drifts.
 */

#include <cstdio>

#include "bench/harness.h"
#include "ml/metrics.h"

using namespace mapp;

int
main()
{
    bench::printSystemHeader(
        "Extension - beyond 2-app bags (paper Section VII open "
        "problem)");

    predictor::MultiAppPredictor model;
    model.train(bench::campaignPoints());

    TextTable table(
        "homogeneous bags of k instances: measured GPU makespan vs. "
        "naive chained 2-app prediction");
    table.setHeader({"bench", "k", "measured(ms)", "naive pred(ms)",
                     "rel err(%)"});

    for (auto id : {vision::BenchmarkId::Hog, vision::BenchmarkId::Surf,
                    vision::BenchmarkId::Sift}) {
        const predictor::BagMember m{id, 20};
        const auto homo2 =
            bench::collector().collect(predictor::BagSpec{m, m});
        const auto scaling =
            bench::collector().gpuHomogeneousScaling(m, 4);
        const double pred2 = model.predict(homo2);
        for (int k = 2; k <= 4; ++k) {
            // Naive extrapolation: the 2-app prediction scaled by k/2
            // (what a scheduler without a k-app model would assume).
            const double naive =
                pred2 * static_cast<double>(k) / 2.0;
            const double measured =
                scaling[static_cast<std::size_t>(k - 1)];
            table.addRow({vision::benchmarkName(id), std::to_string(k),
                          formatDouble(measured * 1e3, 3),
                          formatDouble(naive * 1e3, 3),
                          formatDouble(ml::relativeErrorPercent(
                                           measured, naive),
                                       1)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "the drift at k > 2 is why the paper calls variable bag sizes "
        "an open problem: interference is not linear in k.\n");
    return 0;
}
