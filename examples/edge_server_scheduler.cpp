/**
 * @file
 * Edge-server co-scheduling: the paper's motivating use case. A GPU
 * edge server receives a queue of offloaded vision jobs and must pair
 * them into 2-app MPS bags. This example trains the predictor once and
 * compares three pairing policies from predictor::CoScheduler:
 *
 *   - FIFO (arrival order, the baseline),
 *   - greedy (head job + partner with the smallest predicted bag time),
 *   - exhaustive (best perfect matching under predicted times).
 *
 * The schedulers only see pre-GPU quantities (single-instance features
 * and CPU fairness); the measured makespans are the ground truth.
 */

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "predictor/scheduler.h"

using namespace mapp;
using predictor::BagMember;

int
main()
{
    // 1. Train the predictor on the standard campaign.
    predictor::DataCollector collector;
    std::printf("training the predictor on the 91-run campaign...\n");
    const auto points =
        collector.collectAll(predictor::DataCollector::campaign91());
    predictor::MultiAppPredictor model;
    model.train(points);
    predictor::CoScheduler scheduler(model, collector);

    // 2. A queue of 10 offloaded jobs (benchmark + batch size).
    Rng rng(2026);
    std::vector<BagMember> queue;
    for (int i = 0; i < 10; ++i) {
        queue.push_back(
            {vision::kAllBenchmarks[static_cast<std::size_t>(
                 rng.uniformInt(0, 8))],
             static_cast<int>(vision::kBatchSizes[static_cast<std::size_t>(
                 rng.uniformInt(0, 2))])});
    }
    std::printf("job queue:");
    for (const auto& job : queue)
        std::printf(" %s@%d", vision::benchmarkName(job.id).c_str(),
                    job.batchSize);
    std::printf("\n\n");

    // 3. Schedule under each policy and measure the outcomes.
    TextTable table("co-scheduling outcome (5 bags each)");
    table.setHeader({"policy", "predicted total (ms)",
                     "measured total (ms)"});
    double fifoMeasured = 0.0;
    for (const auto& [policy, label] :
         {std::pair{predictor::PairingPolicy::Fifo, "FIFO"},
          {predictor::PairingPolicy::Greedy, "greedy"},
          {predictor::PairingPolicy::Exhaustive, "exhaustive"}}) {
        const auto schedule = scheduler.schedule(queue, policy);
        const double measured = scheduler.measure(schedule);
        if (policy == predictor::PairingPolicy::Fifo)
            fifoMeasured = measured;
        table.addRow(
            {label,
             formatDouble(schedule.predictedTotalSeconds * 1e3, 3),
             formatDouble(measured * 1e3, 3)});
    }
    std::printf("%s\n", table.render().c_str());

    const auto best = scheduler.schedule(
        queue, predictor::PairingPolicy::Exhaustive);
    std::printf("exhaustive pairing:\n");
    for (const auto& bag : best.bags)
        std::printf("  %-24s predicted %.3f ms\n",
                    bag.spec.label().c_str(),
                    bag.predictedSeconds * 1e3);
    std::printf("\nexhaustive is %.1f%% %s than FIFO (measured)\n",
                std::abs(1.0 - scheduler.measure(best) / fifoMeasured) *
                    100.0,
                scheduler.measure(best) <= fifoMeasured ? "faster"
                                                        : "slower");
    return 0;
}
