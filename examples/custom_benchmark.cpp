/**
 * @file
 * Extending MAPP with a custom workload: implement a new instrumented
 * kernel (a 2-D box-blur photo filter), profile it, run it through both
 * performance simulators and predict its behaviour in a bag with SIFT —
 * the end-to-end recipe a downstream user follows to cover their own
 * application.
 */

#include <cstdio>

#include "cpusim/multicore_sim.h"
#include "gpusim/mps_sim.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"
#include "profiler/mica.h"
#include "profiler/op_profiler.h"
#include "vision/ops.h"
#include "vision/registry.h"

using namespace mapp;

namespace {

/** The custom kernel: box blur + contrast stretch over a batch. */
std::size_t
runPhotoFilter(const std::vector<vision::Image>& batch)
{
    std::size_t checksum = 0;
    const std::vector<float> box(25, 1.0f / 25.0f);
    for (const auto& img : batch) {
        const vision::Image staged = vision::ops::copyImage(img);
        const vision::Image blurred =
            vision::ops::convolve2d(staged, box, 5);

        // Contrast stretch (instrumented as one phase).
        float lo = 1e30f;
        float hi = -1e30f;
        for (float v : blurred.data()) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        const float span = std::max(hi - lo, 1e-6f);
        double sum = 0.0;
        for (float v : blurred.data())
            sum += static_cast<double>((v - lo) / span);
        checksum += static_cast<std::size_t>(sum);

        const auto px = static_cast<InstCount>(blurred.pixels());
        vision::ops::PhaseBuilder("contrast_stretch")
            .insts(isa::InstClass::MemRead, px * 2)
            .insts(isa::InstClass::FpAlu, px * 3)
            .insts(isa::InstClass::Simd, px)
            .insts(isa::InstClass::Control, px)
            .insts(isa::InstClass::MemWrite, px / 2)
            .read(px * 2 * sizeof(float))
            .write(px / 2 * sizeof(float))
            .foot(blurred.sizeBytes())
            .par(0.97)
            .items(px)
            .loc(0.7)
            .div(0.05)
            .record();
    }
    return checksum;
}

}  // namespace

int
main()
{
    // 1. Profile the custom workload (PIN/MICA stand-in).
    const auto batch = vision::generateBatch(
        vision::BenchmarkId::Hog, 20, /*seed=*/7);  // any image source
    profiler::ProfilerSession session("PHOTOFILTER", 20);
    runPhotoFilter(batch);
    const auto trace = session.take();
    std::printf("%s\n", profiler::characterize(trace).toString().c_str());

    // 2. Single-instance times on both simulated machines.
    cpusim::MulticoreSim cpu;
    gpusim::MpsSim gpu;
    const int threads = cpu.bestThreadCount(trace);
    const auto cpuAlone = cpu.runAlone(trace, threads);
    const auto gpuAlone = gpu.runAlone(trace);
    std::printf("CPU alone: %.3f ms (best threads %d), GPU alone: %.3f "
                "ms\n",
                cpuAlone.time * 1e3, threads, gpuAlone.time * 1e3);

    // 3. Measure the bag with SIFT and compare with the prediction of a
    //    model trained only on the standard campaign.
    predictor::DataCollector collector;
    predictor::MultiAppPredictor model;
    model.train(collector.collectAll(
        predictor::DataCollector::campaign91()));

    const auto& sift = vision::cachedTrace(vision::BenchmarkId::Sift, 20);
    const auto bag = gpu.runShared({&trace, &sift});

    // Assemble the custom app's features by hand.
    predictor::AppFeatures custom;
    custom.app = "PHOTOFILTER";
    custom.batchSize = 20;
    custom.cpuTime = cpuAlone.time;
    custom.gpuTime = gpuAlone.time;
    custom.mixPercent = profiler::characterize(trace).mixPercent;

    const auto siftMember =
        predictor::BagMember{vision::BenchmarkId::Sift, 20};
    const auto cpuBag = cpu.runShared(
        {&trace, &sift},
        {threads, cpu.bestThreadCount(sift)});
    const std::vector<double> ipcShared{cpuBag.apps[0].ipc,
                                        cpuBag.apps[1].ipc};
    const std::vector<double> ipcAlone{
        cpuAlone.ipc, collector.ipcAlone(siftMember)};
    const double fairness = predictor::fairness(ipcShared, ipcAlone);

    const double predicted = model.predict(
        custom, collector.appFeatures(siftMember), fairness);
    std::printf("bag PHOTOFILTER+SIFT: measured %.3f ms, predicted %.3f "
                "ms (fairness %.3f)\n",
                bag.makespan * 1e3, predicted * 1e3, fairness);
    return 0;
}
