/**
 * @file
 * Workload characterization: profile every Table-II benchmark with the
 * PIN/MICA-style profiler and print its full MICA report, then show how
 * the instruction mix shifts with the input batch size — the mechanism
 * that turns batch sizes into distinct data points (Section V-B).
 */

#include <cstdio>

#include "common/table.h"
#include "profiler/mica.h"
#include "vision/registry.h"

using namespace mapp;

int
main()
{
    std::printf("MICA characterization of the Table-II suite\n\n");
    for (auto id : vision::kAllBenchmarks) {
        const auto& trace = vision::cachedTrace(id, 20);
        std::printf("%s", profiler::characterize(trace).toString().c_str());
        std::printf("  phases: %zu (%s ...)\n\n", trace.size(),
                    trace.phases().front().name.c_str());
    }

    // Mix drift across batch sizes for one benchmark.
    std::printf("instruction-mix drift with batch size (SIFT)\n");
    TextTable table("");
    table.setHeader({"batch", "insts(M)", "mem%", "fp%", "sse%", "ctrl%"});
    for (int batch : vision::kBatchSizes) {
        const auto mica = profiler::characterize(
            vision::cachedTrace(vision::BenchmarkId::Sift, batch));
        table.addRow(
            {std::to_string(batch),
             formatDouble(static_cast<double>(mica.instructions) / 1e6, 1),
             formatDouble(mica.memPercent(), 2),
             formatDouble(mica.percent(isa::InstClass::FpAlu), 2),
             formatDouble(mica.percent(isa::InstClass::Simd), 2),
             formatDouble(mica.percent(isa::InstClass::Control), 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
