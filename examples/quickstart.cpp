/**
 * @file
 * Quickstart: the end-to-end MAPP workflow in ~60 lines.
 *
 *  1. Collect the paper's 91-run campaign (profile workloads, measure
 *     single-instance CPU/GPU times, fairness, and bag GPU times).
 *  2. Train the decision-tree predictor on the full feature vector.
 *  3. Predict an unseen bag and explain the prediction.
 */

#include <cstdio>

#include "predictor/data_collection.h"
#include "predictor/predictor.h"

using namespace mapp;

int
main()
{
    // 1. Measure the training campaign on the simulated testbed.
    predictor::DataCollector collector;
    const auto specs = predictor::DataCollector::campaign91();
    std::printf("collecting %zu bag runs...\n", specs.size());
    const auto points = collector.collectAll(specs);

    // 2. Train the predictor (full Table-IV feature vector).
    predictor::MultiAppPredictor model;
    model.train(points);
    std::printf("trained: %zu tree nodes, depth %d\n",
                model.tree().nodeCount(), model.tree().depth());

    // 3. Predict a bag the campaign never measured: SIFT@60 + HoG@60.
    const predictor::BagSpec unseen{
        {vision::BenchmarkId::Sift, 60}, {vision::BenchmarkId::Hog, 60}};
    const auto truth = collector.collect(unseen);
    const auto explanation = model.explain(truth);

    std::printf("bag %s\n", unseen.label().c_str());
    std::printf("  measured GPU bag time : %.6f s\n", truth.gpuBagTime);
    std::printf("  predicted             : %.6f s\n",
                explanation.predictedSeconds);
    std::printf("  relative error        : %.2f %%\n",
                ml::relativeErrorPercent(truth.gpuBagTime,
                                         explanation.predictedSeconds));
    std::printf("  decision path (%zu nodes):\n", explanation.path.size());
    for (const auto& step : explanation.path) {
        std::printf("    %s <= %.4f -> %s\n",
                    explanation
                        .featureNames[static_cast<std::size_t>(step.feature)]
                        .c_str(),
                    step.threshold, step.wentLeft ? "yes" : "no");
    }

    // Bonus: the two most important features (Section VI-C's finding:
    // GPU time and fairness dominate).
    std::printf("feature importances:\n");
    for (const auto& [name, importance] : model.featureImportances())
        if (importance > 0.02)
            std::printf("    %-14s %.3f\n", name.c_str(), importance);
    return 0;
}
