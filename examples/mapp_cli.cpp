/**
 * @file
 * mapp_cli — command-line front end to the whole pipeline.
 *
 *   mapp_cli collect <out.csv>        measure the 91-run campaign and
 *                                     write it as a dataset CSV
 *   mapp_cli loocv [insmix|full]      run the paper's LOOCV and print
 *                                     the per-benchmark fold errors
 *   mapp_cli predict A@20 B@80        train on the campaign, predict
 *                                     the bag's GPU time and explain it
 *   mapp_cli trace SIFT 40 <out.csv>  profile one workload and dump its
 *                                     phase trace
 *   mapp_cli tree                     print the trained decision tree
 *   mapp_cli report <metrics.json> [predictions.jsonl|-] [trace.json|-]
 *                                     render a markdown run report
 *                                     from a previous run's sidecars
 *   mapp_cli cache stats|clear|warm   inspect, empty, or pre-populate
 *                                     the persistent artifact cache
 *   mapp_cli serve [--socket=PATH]    resident prediction service:
 *                                     JSONL requests over a Unix socket
 *                                     (or stdin/stdout), micro-batched
 *                                     through the compiled engine
 *
 * Serve flags (serve only):
 *   --socket=<path>           listen on a Unix-domain socket; without
 *                             it the service speaks stdin/stdout
 *   --stdin                   explicit stdin/stdout transport
 *   --queue-rows=<n>          admission bound in queued rows (1024)
 *   --batch-rows=<n>          micro-batch flush size in rows (32)
 *   --linger-ms=<ms>          max wait for batch-mates (2.0)
 *   --default-deadline-ms=<ms> deadline for requests without one (off)
 *
 * Cache flags (valid before or after the command):
 *   --cache-dir=<dir>         artifact cache root (default
 *                             $MAPP_CACHE_DIR, else ~/.cache/mapp)
 *   --no-cache                disable the persistent artifact cache
 *                             for this run
 *
 * Observability flags (valid before or after the command):
 *   --trace-out=<file>        record a Chrome-trace JSON of the run
 *                             (open in chrome://tracing or Perfetto)
 *   --timeline-out=<file>     plain-text timeline dump of the events
 *   --metrics-out=<file>      write the metrics registry JSON at exit
 *   --metrics-prom-out=<file> same registry, Prometheus text format
 *   --predictions-out=<file>  per-prediction provenance JSONL (enables
 *                             the prediction audit log)
 *   --audit-sample=<n>        record every n-th prediction (default 1)
 *   --log-level=<level>       quiet | normal | verbose | debug
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/artifact_cache.h"
#include "common/error.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/parse.h"
#include "common/shutdown.h"
#include "common/simd.h"
#include "isa/trace_io.h"
#include "ml/dataset_io.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/report.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"
#include "predictor/schemes.h"
#include "serve/server.h"
#include "serve/service.h"

using namespace mapp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  mapp_cli collect <out.csv>\n"
                 "  mapp_cli loocv [insmix|full]\n"
                 "  mapp_cli predict <BENCH@BATCH> <BENCH@BATCH>\n"
                 "  mapp_cli trace <BENCH> <BATCH> <out.csv>\n"
                 "  mapp_cli tree\n"
                 "  mapp_cli report <metrics.json> "
                 "[predictions.jsonl|-] [trace.json|-]\n"
                 "  mapp_cli cache stats|clear|warm\n"
                 "  mapp_cli serve [--socket=<path> | --stdin] "
                 "[--queue-rows=<n>] [--batch-rows=<n>] "
                 "[--linger-ms=<ms>] [--default-deadline-ms=<ms>]\n"
                 "flags:\n"
                 "  --cache-dir=<dir>      artifact cache root "
                 "(default $MAPP_CACHE_DIR, else ~/.cache/mapp)\n"
                 "  --no-cache             disable the persistent "
                 "artifact cache for this run\n"
                 "  --trace-out=<file>     Chrome-trace JSON "
                 "(chrome://tracing, Perfetto)\n"
                 "  --timeline-out=<file>  plain-text event timeline\n"
                 "  --metrics-out=<file>   metrics registry JSON\n"
                 "  --metrics-prom-out=<file>  Prometheus text "
                 "exposition of the registry\n"
                 "  --predictions-out=<file>   prediction provenance "
                 "JSONL (enables the audit log)\n"
                 "  --audit-sample=<n>     record every n-th "
                 "prediction (default 1)\n"
                 "  --log-level=<level>    quiet|normal|verbose|debug\n"
                 "  --threads=<n>          parallel lanes (default: "
                 "MAPP_THREADS env, else all cores)\n"
                 "  --simd=<tier>          auto|avx2|sse2|scalar "
                 "kernel tier (default: MAPP_SIMD env, else auto)\n");
    return 2;
}

/** Flags of the serve subcommand (rejected for every other command). */
struct ServeFlags
{
    bool any = false;  ///< a serve flag appeared on the command line
    bool stdinMode = false;
    std::string socketPath;
    serve::ServiceOptions service;
};

/** Observability flags shared by every subcommand. */
struct ObsOptions
{
    std::string traceOut;
    std::string timelineOut;
    std::string metricsOut;
    std::string metricsPromOut;
    std::string predictionsOut;
    int auditSample = 1;
    ServeFlags serve;
};

/**
 * Strip --trace-out/--timeline-out/--metrics-out/--log-level from the
 * argument list and apply them. @return std::nullopt on a bad flag.
 */
std::optional<ObsOptions>
extractObsOptions(std::vector<std::string>& args)
{
    ObsOptions opts;
    std::vector<std::string> rest;
    for (const auto& arg : args) {
        const auto flagValue =
            [&](const char* prefix) -> std::optional<std::string> {
            const std::size_t n = std::strlen(prefix);
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(n);
            return std::nullopt;
        };
        if (auto v = flagValue("--trace-out=")) {
            opts.traceOut = *v;
        } else if (auto v = flagValue("--timeline-out=")) {
            opts.timelineOut = *v;
        } else if (auto v = flagValue("--metrics-out=")) {
            opts.metricsOut = *v;
        } else if (auto v = flagValue("--metrics-prom-out=")) {
            opts.metricsPromOut = *v;
        } else if (auto v = flagValue("--predictions-out=")) {
            opts.predictionsOut = *v;
        } else if (auto v = flagValue("--audit-sample=")) {
            const auto period = parseBoundedInt(*v, 1, 1'000'000'000);
            if (!period) {
                std::fprintf(stderr,
                             "error: bad audit sample period: %s\n",
                             period.error().message().c_str());
                return std::nullopt;
            }
            opts.auditSample = period.value();
        } else if (auto v = flagValue("--log-level=")) {
            const auto level = parseLogLevel(*v);
            if (!level) {
                std::fprintf(stderr, "error: unknown log level '%s'\n",
                             v->c_str());
                return std::nullopt;
            }
            setLogLevel(*level);
        } else if (auto v = flagValue("--threads=")) {
            const auto threads = parseBoundedInt(*v, 1, 1 << 20);
            if (!threads) {
                std::fprintf(stderr, "error: bad thread count: %s\n",
                             threads.error().message().c_str());
                return std::nullopt;
            }
            parallel::setMaxThreads(threads.value());
        } else if (auto v = flagValue("--simd=")) {
            // Strict, unlike the MAPP_SIMD env fallback: a typo on the
            // command line should fail loudly, not silently run auto.
            // An unsupported-but-valid tier still warns and clamps
            // inside setTierFromName (honoring it would SIGILL).
            if (!simd::setTierFromName(*v)) {
                std::fprintf(stderr,
                             "error: unknown SIMD tier '%s' (expected "
                             "auto, avx2, sse2 or scalar)\n",
                             v->c_str());
                return std::nullopt;
            }
        } else if (auto v = flagValue("--cache-dir=")) {
            cache::defaultArtifactCache().setDirectory(*v);
        } else if (arg == "--no-cache") {
            cache::defaultArtifactCache().setEnabled(false);
        } else if (auto v = flagValue("--socket=")) {
            if (v->empty()) {
                std::fprintf(stderr,
                             "error: --socket needs a path\n");
                return std::nullopt;
            }
            opts.serve.socketPath = *v;
            opts.serve.any = true;
        } else if (arg == "--stdin") {
            opts.serve.stdinMode = true;
            opts.serve.any = true;
        } else if (auto v = flagValue("--queue-rows=")) {
            const auto rows = parseBoundedInt(*v, 1, 1 << 24);
            if (!rows) {
                std::fprintf(stderr, "error: bad queue bound: %s\n",
                             rows.error().message().c_str());
                return std::nullopt;
            }
            opts.serve.service.queueCapacityRows =
                static_cast<std::size_t>(rows.value());
            opts.serve.any = true;
        } else if (auto v = flagValue("--batch-rows=")) {
            const auto rows = parseBoundedInt(*v, 1, 1 << 20);
            if (!rows) {
                std::fprintf(stderr, "error: bad batch size: %s\n",
                             rows.error().message().c_str());
                return std::nullopt;
            }
            opts.serve.service.batchRows =
                static_cast<std::size_t>(rows.value());
            opts.serve.any = true;
        } else if (auto v = flagValue("--linger-ms=")) {
            const auto ms = parseDouble(*v);
            if (!ms || ms.value() < 0.0) {
                std::fprintf(
                    stderr,
                    "error: --linger-ms needs a non-negative number\n");
                return std::nullopt;
            }
            opts.serve.service.lingerMs = ms.value();
            opts.serve.any = true;
        } else if (auto v = flagValue("--default-deadline-ms=")) {
            const auto ms = parseDouble(*v);
            if (!ms || ms.value() < 0.0) {
                std::fprintf(stderr,
                             "error: --default-deadline-ms needs a "
                             "non-negative number\n");
                return std::nullopt;
            }
            opts.serve.service.defaultDeadlineMs = ms.value();
            opts.serve.any = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "error: unknown flag '%s'\n",
                         arg.c_str());
            return std::nullopt;
        } else {
            rest.push_back(arg);
        }
    }
    args = std::move(rest);
    if (!opts.traceOut.empty() || !opts.timelineOut.empty())
        obs::tracer().setEnabled(true);
    if (!opts.predictionsOut.empty()) {
        obs::predictionLog().setSamplePeriod(
            static_cast<std::uint64_t>(opts.auditSample));
        obs::predictionLog().setEnabled(true);
    }
    return opts;
}

/** Write the requested trace/metrics artifacts after the command. */
void
writeObsOutputs(const ObsOptions& opts)
{
    if (!opts.traceOut.empty()) {
        if (obs::tracer().writeChromeTrace(opts.traceOut))
            inform("wrote trace to " + opts.traceOut);
        else
            warn("failed to write trace to " + opts.traceOut);
    }
    if (!opts.timelineOut.empty()) {
        if (obs::tracer().writeTextTimeline(opts.timelineOut))
            inform("wrote timeline to " + opts.timelineOut);
        else
            warn("failed to write timeline to " + opts.timelineOut);
    }
    if (!opts.metricsOut.empty()) {
        if (obs::defaultRegistry().writeJson(opts.metricsOut))
            inform("wrote metrics to " + opts.metricsOut);
        else
            warn("failed to write metrics to " + opts.metricsOut);
    }
    if (!opts.metricsPromOut.empty()) {
        if (obs::writePrometheusFile(obs::defaultRegistry().snapshot(),
                                     opts.metricsPromOut))
            inform("wrote Prometheus metrics to " +
                   opts.metricsPromOut);
        else
            warn("failed to write Prometheus metrics to " +
                 opts.metricsPromOut);
    }
    if (!opts.predictionsOut.empty()) {
        if (obs::predictionLog().writeJsonl(opts.predictionsOut))
            inform("wrote prediction provenance to " +
                   opts.predictionsOut);
        else
            warn("failed to write predictions to " +
                 opts.predictionsOut);
    }
    if (logLevel() >= LogLevel::Verbose) {
        const std::string profile = obs::pipelineProfiler().toText();
        if (!profile.empty())
            verbose("pipeline phase profile:\n" + profile);
    }
}

/** Largest batch size the CLI accepts anywhere. */
constexpr int kMaxBatch = 1'000'000;

/**
 * Strictly parse a batch-size token: "1x6", "", "-3" and out-of-range
 * values all fail with the reason, instead of std::stoi's silent
 * truncation or uncaught std::invalid_argument.
 */
int
parseBatch(const std::string& text, const std::string& what)
{
    const auto batch = parseBoundedInt(text, 1, kMaxBatch);
    if (!batch)
        fatal("bad " + what + ": " + batch.error().message());
    return batch.value();
}

/** Parse "SIFT@40" into a bag member. */
predictor::BagMember
parseMember(const std::string& text)
{
    const auto at = text.find('@');
    if (at == std::string::npos)
        fatal("expected BENCH@BATCH, got " + text);
    predictor::BagMember m;
    m.id = vision::benchmarkFromName(text.substr(0, at));
    m.batchSize = parseBatch(text.substr(at + 1),
                             "batch in '" + text + "'");
    return m;
}

std::vector<std::string>
benchNames()
{
    std::vector<std::string> names;
    for (auto id : vision::kAllBenchmarks)
        names.push_back(vision::benchmarkName(id));
    return names;
}

int
cmdCollect(const std::string& path)
{
    predictor::DataCollector collector;
    std::printf("collecting the 91-run campaign...\n");
    const auto points =
        collector.collectAll(predictor::DataCollector::campaign91());
    ml::writeDatasetFile(predictor::toDataset(points), path);
    std::printf("wrote %zu data points to %s\n", points.size(),
                path.c_str());
    return 0;
}

int
cmdLoocv(const std::string& schemeName)
{
    predictor::PredictorParams params;
    if (schemeName == "insmix")
        params.scheme = predictor::insmixScheme();
    else if (!schemeName.empty() && schemeName != "full")
        fatal("unknown scheme " + schemeName);

    predictor::DataCollector collector;
    const auto raw = predictor::toDataset(
        collector.collectAll(predictor::DataCollector::campaign91()));
    const auto cv = predictor::MultiAppPredictor::looBenchmarkCv(
        raw, params, benchNames());
    for (const auto& fold : cv.folds)
        std::printf("%-8s %7.2f%%  (%zu points)\n", fold.label.c_str(),
                    fold.meanRelativeError, fold.testPoints);
    std::printf("mean     %7.2f%%\n", cv.meanRelativeError());
    return 0;
}

int
cmdPredict(const std::string& a, const std::string& b)
{
    const predictor::BagSpec spec{parseMember(a), parseMember(b)};

    predictor::DataCollector collector;
    std::printf("training on the 91-run campaign...\n");
    predictor::MultiAppPredictor model;
    model.train(collector.collectAll(
        predictor::DataCollector::campaign91()));

    const auto truth = collector.collect(spec);
    const auto e = model.explain(truth);
    // The measured bag doubles as ground truth for the online quality
    // monitor (error histograms, drift gauges, audit annotation).
    const auto evalSet = predictor::toDataset({truth});
    model.observeGroundTruth(evalSet, model.predictDataset(evalSet));
    std::printf("bag %s\n", spec.canonical().label().c_str());
    std::printf("  predicted GPU time : %.6f s\n", e.predictedSeconds);
    std::printf("  uncertainty (RMSE) : %.6f s\n",
                e.uncertaintySeconds);
    std::printf("  measured GPU time  : %.6f s\n", truth.gpuBagTime);
    std::printf("  fairness (Eq. 2)   : %.3f\n", truth.fairness);
    std::printf("  decision path:\n");
    for (const auto& step : e.path)
        std::printf(
            "    %s <= %.4f -> %s\n",
            e.featureNames[static_cast<std::size_t>(step.feature)]
                .c_str(),
            step.threshold, step.wentLeft ? "yes" : "no");
    return 0;
}

int
cmdTrace(const std::string& bench, const std::string& batch,
         const std::string& path)
{
    const auto id = vision::benchmarkFromName(bench);
    const int batchSize = parseBatch(batch, "batch '" + batch + "'");
    const auto trace = vision::profileWorkload(id, batchSize);
    isa::writeTraceFile(trace, path);
    std::printf("%s\nwrote %zu phases to %s\n", trace.summary().c_str(),
                trace.size(), path.c_str());
    return 0;
}

int
cmdReport(const std::vector<std::string>& args)
{
    obs::RunReportInputs inputs;
    inputs.metricsPath = args[1];
    if (args.size() > 2 && args[2] != "-")
        inputs.predictionsPath = args[2];
    if (args.size() > 3 && args[3] != "-")
        inputs.tracePath = args[3];
    const auto report = obs::renderRunReport(inputs);
    if (!report.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     report.error().toString().c_str());
        return 1;
    }
    std::fputs(report.value().c_str(), stdout);
    return 0;
}

int
cmdCache(const std::string& action)
{
    auto& artifacts = cache::defaultArtifactCache();
    if (action == "stats") {
        const std::string dir = artifacts.directory();
        std::printf("cache directory: %s%s\n",
                    dir.empty() ? "(disabled)" : dir.c_str(),
                    !dir.empty() && !artifacts.enabled()
                        ? " (disabled)"
                        : "");
        std::size_t entries = 0;
        std::uintmax_t bytes = 0;
        for (const auto& kind : artifacts.scan()) {
            std::printf("  %-10s %6zu entries  %10ju bytes\n",
                        kind.kind.c_str(), kind.entries,
                        static_cast<std::uintmax_t>(kind.bytes));
            entries += kind.entries;
            bytes += kind.bytes;
        }
        std::printf("  %-10s %6zu entries  %10ju bytes\n", "total",
                    entries, bytes);
        return 0;
    }
    if (action == "clear") {
        const std::size_t removed = artifacts.clear();
        std::printf("removed %zu cache entries\n", removed);
        return 0;
    }
    if (action == "warm") {
        if (!artifacts.enabled())
            fatal("cache warm: the artifact cache is disabled");
        // One full pipeline pass populates every artifact kind: traces,
        // member records, co-runs, the campaign, and the fitted model.
        predictor::DataCollector collector;
        std::printf("warming the artifact cache (91-run campaign + "
                    "model fit)...\n");
        predictor::MultiAppPredictor model;
        model.train(collector.collectAll(
            predictor::DataCollector::campaign91()));
        for (const auto& kind : cache::defaultArtifactCache().scan())
            std::printf("  %-10s %6zu entries\n", kind.kind.c_str(),
                        kind.entries);
        return 0;
    }
    fatal("cache: unknown action '" + action +
          "' (expected stats, clear or warm)");
}

int
cmdTree()
{
    predictor::DataCollector collector;
    predictor::MultiAppPredictor model;
    model.train(collector.collectAll(
        predictor::DataCollector::campaign91()));
    std::printf("%s", model.tree().toText().c_str());
    return 0;
}

int
cmdServe(const ServeFlags& flags)
{
    if (!flags.socketPath.empty() && flags.stdinMode)
        fatal("serve: --socket and --stdin are mutually exclusive");

    predictor::DataCollector collector;
    const auto buildModel =
        [&collector]()
        -> std::shared_ptr<const predictor::MultiAppPredictor> {
        auto model = std::make_shared<predictor::MultiAppPredictor>();
        model->train(collector.collectAll(
            predictor::DataCollector::campaign91()));
        return model;
    };
    inform("training on the 91-run campaign...");
    serve::PredictionService service(buildModel(), buildModel,
                                     flags.service);
    serve::Server server(service, collector);

    // Replace the flush-and-exit handler for the serve loop's
    // lifetime: a signal now triggers a graceful drain (stop
    // accepting, answer every admitted job) and the normal sidecar
    // flush runs on the way out of main. A second signal still kills
    // the process immediately (see installShutdownHandler).
    installShutdownHandler(
        [&server](int) { server.requestStop(); });
    const auto cause = flags.socketPath.empty()
                           ? server.serveStdio()
                           : server.serveSocket(flags.socketPath);
    // The server is about to die; a late signal must not touch it.
    installShutdownHandler(
        [](int signo) { std::_Exit(128 + signo); });
    if (cause == serve::StopCause::Signal) {
        inform("drained after signal");
        return 128 + shutdownSignal();
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const auto opts = extractObsOptions(args);
    if (!opts)
        return 2;
    if (args.empty())
        return usage();

    // Resolve the SIMD kernel table (and run the one-time walk
    // calibration) up front rather than on first batch call, so the
    // simd.active_tier / simd.walk_tier gauges land in --metrics-out
    // even for commands that never reach the batch inference path.
    simd::kernels();

    const std::string cmd = args[0];
    const std::size_t n = args.size();
    if (opts->serve.any && cmd != "serve") {
        std::fprintf(stderr,
                     "error: serve flags are only valid with the "
                     "serve command\n");
        return 2;
    }

    // A SIGINT/SIGTERM must not drop the buffered sidecars (trace,
    // prediction provenance, metrics): flush them all, then exit with
    // the conventional 128+signo status. The serve command swaps in a
    // graceful-drain callback for the duration of its loop.
    installShutdownHandler([&opts](int signo) {
        writeObsOutputs(*opts);
        std::_Exit(128 + signo);
    });

    int status = -1;
    try {
        if (cmd == "collect" && n == 2)
            status = cmdCollect(args[1]);
        else if (cmd == "loocv" && n <= 2)
            status = cmdLoocv(n >= 2 ? args[1] : "");
        else if (cmd == "predict" && n == 3)
            status = cmdPredict(args[1], args[2]);
        else if (cmd == "trace" && n == 4)
            status = cmdTrace(args[1], args[2], args[3]);
        else if (cmd == "tree" && n == 1)
            status = cmdTree();
        else if (cmd == "report" && n >= 2 && n <= 4)
            status = cmdReport(args);
        else if (cmd == "cache" && n == 2)
            status = cmdCache(args[1]);
        else if (cmd == "serve" && n == 1)
            status = cmdServe(opts->serve);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        writeObsOutputs(*opts);
        return 1;
    } catch (const std::exception& e) {
        // Last-resort boundary: no input, however malformed, may take
        // the process down with an uncaught exception.
        std::fprintf(stderr, "internal error: %s\n", e.what());
        return 1;
    }
    if (status < 0)
        return usage();
    writeObsOutputs(*opts);
    return status;
}
