/**
 * @file
 * mapp_cli — command-line front end to the whole pipeline.
 *
 *   mapp_cli collect <out.csv>        measure the 91-run campaign and
 *                                     write it as a dataset CSV
 *   mapp_cli loocv [insmix|full]      run the paper's LOOCV and print
 *                                     the per-benchmark fold errors
 *   mapp_cli predict A@20 B@80        train on the campaign, predict
 *                                     the bag's GPU time and explain it
 *   mapp_cli trace SIFT 40 <out.csv>  profile one workload and dump its
 *                                     phase trace
 *   mapp_cli tree                     print the trained decision tree
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.h"
#include "isa/trace_io.h"
#include "ml/dataset_io.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"
#include "predictor/schemes.h"

using namespace mapp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  mapp_cli collect <out.csv>\n"
                 "  mapp_cli loocv [insmix|full]\n"
                 "  mapp_cli predict <BENCH@BATCH> <BENCH@BATCH>\n"
                 "  mapp_cli trace <BENCH> <BATCH> <out.csv>\n"
                 "  mapp_cli tree\n");
    return 2;
}

/** Parse "SIFT@40" into a bag member. */
predictor::BagMember
parseMember(const std::string& text)
{
    const auto at = text.find('@');
    if (at == std::string::npos)
        fatal("expected BENCH@BATCH, got " + text);
    predictor::BagMember m;
    m.id = vision::benchmarkFromName(text.substr(0, at));
    m.batchSize = std::stoi(text.substr(at + 1));
    if (m.batchSize <= 0)
        fatal("batch size must be positive");
    return m;
}

std::vector<std::string>
benchNames()
{
    std::vector<std::string> names;
    for (auto id : vision::kAllBenchmarks)
        names.push_back(vision::benchmarkName(id));
    return names;
}

int
cmdCollect(const std::string& path)
{
    predictor::DataCollector collector;
    std::printf("collecting the 91-run campaign...\n");
    const auto points =
        collector.collectAll(predictor::DataCollector::campaign91());
    ml::writeDatasetFile(predictor::toDataset(points), path);
    std::printf("wrote %zu data points to %s\n", points.size(),
                path.c_str());
    return 0;
}

int
cmdLoocv(const std::string& schemeName)
{
    predictor::PredictorParams params;
    if (schemeName == "insmix")
        params.scheme = predictor::insmixScheme();
    else if (!schemeName.empty() && schemeName != "full")
        fatal("unknown scheme " + schemeName);

    predictor::DataCollector collector;
    const auto raw = predictor::toDataset(
        collector.collectAll(predictor::DataCollector::campaign91()));
    const auto cv = predictor::MultiAppPredictor::looBenchmarkCv(
        raw, params, benchNames());
    for (const auto& fold : cv.folds)
        std::printf("%-8s %7.2f%%  (%zu points)\n", fold.label.c_str(),
                    fold.meanRelativeError, fold.testPoints);
    std::printf("mean     %7.2f%%\n", cv.meanRelativeError());
    return 0;
}

int
cmdPredict(const std::string& a, const std::string& b)
{
    const predictor::BagSpec spec{parseMember(a), parseMember(b)};

    predictor::DataCollector collector;
    std::printf("training on the 91-run campaign...\n");
    predictor::MultiAppPredictor model;
    model.train(collector.collectAll(
        predictor::DataCollector::campaign91()));

    const auto truth = collector.collect(spec);
    const auto e = model.explain(truth);
    std::printf("bag %s\n", spec.canonical().label().c_str());
    std::printf("  predicted GPU time : %.6f s\n", e.predictedSeconds);
    std::printf("  measured GPU time  : %.6f s\n", truth.gpuBagTime);
    std::printf("  fairness (Eq. 2)   : %.3f\n", truth.fairness);
    std::printf("  decision path:\n");
    for (const auto& step : e.path)
        std::printf(
            "    %s <= %.4f -> %s\n",
            e.featureNames[static_cast<std::size_t>(step.feature)]
                .c_str(),
            step.threshold, step.wentLeft ? "yes" : "no");
    return 0;
}

int
cmdTrace(const std::string& bench, const std::string& batch,
         const std::string& path)
{
    const auto id = vision::benchmarkFromName(bench);
    const int batchSize = std::stoi(batch);
    const auto trace = vision::profileWorkload(id, batchSize);
    isa::writeTraceFile(trace, path);
    std::printf("%s\nwrote %zu phases to %s\n", trace.summary().c_str(),
                trace.size(), path.c_str());
    return 0;
}

int
cmdTree()
{
    predictor::DataCollector collector;
    predictor::MultiAppPredictor model;
    model.train(collector.collectAll(
        predictor::DataCollector::campaign91()));
    std::printf("%s", model.tree().toText().c_str());
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "collect" && argc == 3)
            return cmdCollect(argv[2]);
        if (cmd == "loocv")
            return cmdLoocv(argc >= 3 ? argv[2] : "");
        if (cmd == "predict" && argc == 4)
            return cmdPredict(argv[2], argv[3]);
        if (cmd == "trace" && argc == 5)
            return cmdTrace(argv[2], argv[3], argv[4]);
        if (cmd == "tree")
            return cmdTree();
    } catch (const FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
