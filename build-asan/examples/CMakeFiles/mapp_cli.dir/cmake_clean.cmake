file(REMOVE_RECURSE
  "CMakeFiles/mapp_cli.dir/mapp_cli.cpp.o"
  "CMakeFiles/mapp_cli.dir/mapp_cli.cpp.o.d"
  "mapp_cli"
  "mapp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
