# Empty dependencies file for mapp_cli.
# This may be replaced when dependencies are built.
