file(REMOVE_RECURSE
  "CMakeFiles/edge_server_scheduler.dir/edge_server_scheduler.cpp.o"
  "CMakeFiles/edge_server_scheduler.dir/edge_server_scheduler.cpp.o.d"
  "edge_server_scheduler"
  "edge_server_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_server_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
