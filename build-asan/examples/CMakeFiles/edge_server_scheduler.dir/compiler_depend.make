# Empty compiler generated dependencies file for edge_server_scheduler.
# This may be replaced when dependencies are built.
