# Empty compiler generated dependencies file for test_cpusim.
# This may be replaced when dependencies are built.
