file(REMOVE_RECURSE
  "CMakeFiles/test_cpusim.dir/test_cpusim.cc.o"
  "CMakeFiles/test_cpusim.dir/test_cpusim.cc.o.d"
  "test_cpusim"
  "test_cpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
