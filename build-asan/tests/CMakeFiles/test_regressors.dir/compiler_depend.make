# Empty compiler generated dependencies file for test_regressors.
# This may be replaced when dependencies are built.
