file(REMOVE_RECURSE
  "CMakeFiles/test_regressors.dir/test_regressors.cc.o"
  "CMakeFiles/test_regressors.dir/test_regressors.cc.o.d"
  "test_regressors"
  "test_regressors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
