# Empty dependencies file for test_classifiers.
# This may be replaced when dependencies are built.
