file(REMOVE_RECURSE
  "CMakeFiles/test_classifiers.dir/test_classifiers.cc.o"
  "CMakeFiles/test_classifiers.dir/test_classifiers.cc.o.d"
  "test_classifiers"
  "test_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
