file(REMOVE_RECURSE
  "CMakeFiles/test_timelines.dir/test_timelines.cc.o"
  "CMakeFiles/test_timelines.dir/test_timelines.cc.o.d"
  "test_timelines"
  "test_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
