# Empty compiler generated dependencies file for test_timelines.
# This may be replaced when dependencies are built.
