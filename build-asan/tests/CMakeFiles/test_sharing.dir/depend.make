# Empty dependencies file for test_sharing.
# This may be replaced when dependencies are built.
