file(REMOVE_RECURSE
  "CMakeFiles/test_sharing.dir/test_sharing.cc.o"
  "CMakeFiles/test_sharing.dir/test_sharing.cc.o.d"
  "test_sharing"
  "test_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
