file(REMOVE_RECURSE
  "CMakeFiles/test_fairness.dir/test_fairness.cc.o"
  "CMakeFiles/test_fairness.dir/test_fairness.cc.o.d"
  "test_fairness"
  "test_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
