# Empty dependencies file for test_fairness.
# This may be replaced when dependencies are built.
