# Empty dependencies file for test_inst_mix.
# This may be replaced when dependencies are built.
