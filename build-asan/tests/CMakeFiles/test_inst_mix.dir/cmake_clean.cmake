file(REMOVE_RECURSE
  "CMakeFiles/test_inst_mix.dir/test_inst_mix.cc.o"
  "CMakeFiles/test_inst_mix.dir/test_inst_mix.cc.o.d"
  "test_inst_mix"
  "test_inst_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inst_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
