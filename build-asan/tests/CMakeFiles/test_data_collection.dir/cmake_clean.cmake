file(REMOVE_RECURSE
  "CMakeFiles/test_data_collection.dir/test_data_collection.cc.o"
  "CMakeFiles/test_data_collection.dir/test_data_collection.cc.o.d"
  "test_data_collection"
  "test_data_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
