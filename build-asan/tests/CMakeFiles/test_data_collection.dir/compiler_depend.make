# Empty compiler generated dependencies file for test_data_collection.
# This may be replaced when dependencies are built.
