file(REMOVE_RECURSE
  "CMakeFiles/test_ops_scaling.dir/test_ops_scaling.cc.o"
  "CMakeFiles/test_ops_scaling.dir/test_ops_scaling.cc.o.d"
  "test_ops_scaling"
  "test_ops_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
