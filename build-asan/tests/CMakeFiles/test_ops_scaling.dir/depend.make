# Empty dependencies file for test_ops_scaling.
# This may be replaced when dependencies are built.
