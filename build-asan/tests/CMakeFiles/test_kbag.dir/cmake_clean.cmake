file(REMOVE_RECURSE
  "CMakeFiles/test_kbag.dir/test_kbag.cc.o"
  "CMakeFiles/test_kbag.dir/test_kbag.cc.o.d"
  "test_kbag"
  "test_kbag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kbag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
