# Empty compiler generated dependencies file for test_kbag.
# This may be replaced when dependencies are built.
