# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_svr_vs_dtree.
