# Empty dependencies file for bench_svr_vs_dtree.
# This may be replaced when dependencies are built.
