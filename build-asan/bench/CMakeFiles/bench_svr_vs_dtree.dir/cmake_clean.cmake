file(REMOVE_RECURSE
  "CMakeFiles/bench_svr_vs_dtree.dir/bench_svr_vs_dtree.cc.o"
  "CMakeFiles/bench_svr_vs_dtree.dir/bench_svr_vs_dtree.cc.o.d"
  "bench_svr_vs_dtree"
  "bench_svr_vs_dtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svr_vs_dtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
