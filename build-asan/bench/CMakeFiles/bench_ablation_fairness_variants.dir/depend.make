# Empty dependencies file for bench_ablation_fairness_variants.
# This may be replaced when dependencies are built.
