file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fairness_variants.dir/bench_ablation_fairness_variants.cc.o"
  "CMakeFiles/bench_ablation_fairness_variants.dir/bench_ablation_fairness_variants.cc.o.d"
  "bench_ablation_fairness_variants"
  "bench_ablation_fairness_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fairness_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
