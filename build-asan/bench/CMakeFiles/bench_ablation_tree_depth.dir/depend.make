# Empty dependencies file for bench_ablation_tree_depth.
# This may be replaced when dependencies are built.
