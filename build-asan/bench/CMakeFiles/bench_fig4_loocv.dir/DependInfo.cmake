
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_loocv.cc" "bench/CMakeFiles/bench_fig4_loocv.dir/bench_fig4_loocv.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_loocv.dir/bench_fig4_loocv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/predictor/CMakeFiles/mapp_predictor.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/mapp_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpusim/CMakeFiles/mapp_cpusim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gpusim/CMakeFiles/mapp_gpusim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vision/CMakeFiles/mapp_vision.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/profiler/CMakeFiles/mapp_profiler.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/mapp_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/mapp_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/mapp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
