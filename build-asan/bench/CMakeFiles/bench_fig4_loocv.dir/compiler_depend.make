# Empty compiler generated dependencies file for bench_fig4_loocv.
# This may be replaced when dependencies are built.
