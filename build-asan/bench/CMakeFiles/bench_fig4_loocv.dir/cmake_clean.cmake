file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_loocv.dir/bench_fig4_loocv.cc.o"
  "CMakeFiles/bench_fig4_loocv.dir/bench_fig4_loocv.cc.o.d"
  "bench_fig4_loocv"
  "bench_fig4_loocv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_loocv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
