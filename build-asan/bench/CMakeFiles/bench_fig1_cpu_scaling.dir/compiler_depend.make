# Empty compiler generated dependencies file for bench_fig1_cpu_scaling.
# This may be replaced when dependencies are built.
