file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_cpu_scaling.dir/bench_fig1_cpu_scaling.cc.o"
  "CMakeFiles/bench_fig1_cpu_scaling.dir/bench_fig1_cpu_scaling.cc.o.d"
  "bench_fig1_cpu_scaling"
  "bench_fig1_cpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_cpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
