# Empty dependencies file for bench_fig12_decision_heatmap.
# This may be replaced when dependencies are built.
