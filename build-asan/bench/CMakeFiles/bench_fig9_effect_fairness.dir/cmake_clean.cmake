file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_effect_fairness.dir/bench_fig9_effect_fairness.cc.o"
  "CMakeFiles/bench_fig9_effect_fairness.dir/bench_fig9_effect_fairness.cc.o.d"
  "bench_fig9_effect_fairness"
  "bench_fig9_effect_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_effect_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
