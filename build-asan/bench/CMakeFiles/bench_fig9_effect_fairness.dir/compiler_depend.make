# Empty compiler generated dependencies file for bench_fig9_effect_fairness.
# This may be replaced when dependencies are built.
