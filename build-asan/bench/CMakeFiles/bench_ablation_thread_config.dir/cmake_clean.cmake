file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_thread_config.dir/bench_ablation_thread_config.cc.o"
  "CMakeFiles/bench_ablation_thread_config.dir/bench_ablation_thread_config.cc.o.d"
  "bench_ablation_thread_config"
  "bench_ablation_thread_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thread_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
