# Empty dependencies file for bench_ablation_thread_config.
# This may be replaced when dependencies are built.
