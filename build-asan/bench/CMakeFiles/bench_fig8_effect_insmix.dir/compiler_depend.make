# Empty compiler generated dependencies file for bench_fig8_effect_insmix.
# This may be replaced when dependencies are built.
