file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_effect_insmix.dir/bench_fig8_effect_insmix.cc.o"
  "CMakeFiles/bench_fig8_effect_insmix.dir/bench_fig8_effect_insmix.cc.o.d"
  "bench_fig8_effect_insmix"
  "bench_fig8_effect_insmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_effect_insmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
