# Empty dependencies file for bench_table4_features.
# This may be replaced when dependencies are built.
