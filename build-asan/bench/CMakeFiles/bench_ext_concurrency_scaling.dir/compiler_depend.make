# Empty compiler generated dependencies file for bench_ext_concurrency_scaling.
# This may be replaced when dependencies are built.
