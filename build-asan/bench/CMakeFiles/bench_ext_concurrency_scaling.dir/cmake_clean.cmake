file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_concurrency_scaling.dir/bench_ext_concurrency_scaling.cc.o"
  "CMakeFiles/bench_ext_concurrency_scaling.dir/bench_ext_concurrency_scaling.cc.o.d"
  "bench_ext_concurrency_scaling"
  "bench_ext_concurrency_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_concurrency_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
