file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_feature_radar.dir/bench_fig11_feature_radar.cc.o"
  "CMakeFiles/bench_fig11_feature_radar.dir/bench_fig11_feature_radar.cc.o.d"
  "bench_fig11_feature_radar"
  "bench_fig11_feature_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_feature_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
