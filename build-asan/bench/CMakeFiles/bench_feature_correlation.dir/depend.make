# Empty dependencies file for bench_feature_correlation.
# This may be replaced when dependencies are built.
