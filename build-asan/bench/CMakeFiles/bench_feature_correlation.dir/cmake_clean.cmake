file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_correlation.dir/bench_feature_correlation.cc.o"
  "CMakeFiles/bench_feature_correlation.dir/bench_feature_correlation.cc.o.d"
  "bench_feature_correlation"
  "bench_feature_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
