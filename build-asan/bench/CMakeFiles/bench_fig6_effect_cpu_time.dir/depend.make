# Empty dependencies file for bench_fig6_effect_cpu_time.
# This may be replaced when dependencies are built.
