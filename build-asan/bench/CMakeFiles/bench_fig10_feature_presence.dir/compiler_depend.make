# Empty compiler generated dependencies file for bench_fig10_feature_presence.
# This may be replaced when dependencies are built.
