file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_feature_presence.dir/bench_fig10_feature_presence.cc.o"
  "CMakeFiles/bench_fig10_feature_presence.dir/bench_fig10_feature_presence.cc.o.d"
  "bench_fig10_feature_presence"
  "bench_fig10_feature_presence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_feature_presence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
