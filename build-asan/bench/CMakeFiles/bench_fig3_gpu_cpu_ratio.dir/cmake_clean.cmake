file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_gpu_cpu_ratio.dir/bench_fig3_gpu_cpu_ratio.cc.o"
  "CMakeFiles/bench_fig3_gpu_cpu_ratio.dir/bench_fig3_gpu_cpu_ratio.cc.o.d"
  "bench_fig3_gpu_cpu_ratio"
  "bench_fig3_gpu_cpu_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_gpu_cpu_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
