# Empty dependencies file for bench_fig3_gpu_cpu_ratio.
# This may be replaced when dependencies are built.
