# Empty compiler generated dependencies file for bench_gpu_time_breakdown.
# This may be replaced when dependencies are built.
