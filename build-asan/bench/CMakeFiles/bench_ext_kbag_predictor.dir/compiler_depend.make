# Empty compiler generated dependencies file for bench_ext_kbag_predictor.
# This may be replaced when dependencies are built.
