file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_kbag_predictor.dir/bench_ext_kbag_predictor.cc.o"
  "CMakeFiles/bench_ext_kbag_predictor.dir/bench_ext_kbag_predictor.cc.o.d"
  "bench_ext_kbag_predictor"
  "bench_ext_kbag_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_kbag_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
