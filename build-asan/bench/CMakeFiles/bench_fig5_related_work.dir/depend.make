# Empty dependencies file for bench_fig5_related_work.
# This may be replaced when dependencies are built.
