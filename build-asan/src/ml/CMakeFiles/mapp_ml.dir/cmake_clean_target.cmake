file(REMOVE_RECURSE
  "libmapp_ml.a"
)
