file(REMOVE_RECURSE
  "CMakeFiles/mapp_ml.dir/cross_validation.cc.o"
  "CMakeFiles/mapp_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/mapp_ml.dir/dataset.cc.o"
  "CMakeFiles/mapp_ml.dir/dataset.cc.o.d"
  "CMakeFiles/mapp_ml.dir/dataset_io.cc.o"
  "CMakeFiles/mapp_ml.dir/dataset_io.cc.o.d"
  "CMakeFiles/mapp_ml.dir/decision_tree.cc.o"
  "CMakeFiles/mapp_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/mapp_ml.dir/kernels.cc.o"
  "CMakeFiles/mapp_ml.dir/kernels.cc.o.d"
  "CMakeFiles/mapp_ml.dir/linear_regression.cc.o"
  "CMakeFiles/mapp_ml.dir/linear_regression.cc.o.d"
  "CMakeFiles/mapp_ml.dir/metrics.cc.o"
  "CMakeFiles/mapp_ml.dir/metrics.cc.o.d"
  "CMakeFiles/mapp_ml.dir/random_forest.cc.o"
  "CMakeFiles/mapp_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/mapp_ml.dir/svr.cc.o"
  "CMakeFiles/mapp_ml.dir/svr.cc.o.d"
  "libmapp_ml.a"
  "libmapp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
