# Empty dependencies file for mapp_ml.
# This may be replaced when dependencies are built.
