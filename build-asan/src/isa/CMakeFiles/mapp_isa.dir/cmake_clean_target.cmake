file(REMOVE_RECURSE
  "libmapp_isa.a"
)
