file(REMOVE_RECURSE
  "CMakeFiles/mapp_isa.dir/inst_mix.cc.o"
  "CMakeFiles/mapp_isa.dir/inst_mix.cc.o.d"
  "CMakeFiles/mapp_isa.dir/kernel_phase.cc.o"
  "CMakeFiles/mapp_isa.dir/kernel_phase.cc.o.d"
  "CMakeFiles/mapp_isa.dir/trace.cc.o"
  "CMakeFiles/mapp_isa.dir/trace.cc.o.d"
  "CMakeFiles/mapp_isa.dir/trace_io.cc.o"
  "CMakeFiles/mapp_isa.dir/trace_io.cc.o.d"
  "libmapp_isa.a"
  "libmapp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
