# Empty dependencies file for mapp_isa.
# This may be replaced when dependencies are built.
