
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/inst_mix.cc" "src/isa/CMakeFiles/mapp_isa.dir/inst_mix.cc.o" "gcc" "src/isa/CMakeFiles/mapp_isa.dir/inst_mix.cc.o.d"
  "/root/repo/src/isa/kernel_phase.cc" "src/isa/CMakeFiles/mapp_isa.dir/kernel_phase.cc.o" "gcc" "src/isa/CMakeFiles/mapp_isa.dir/kernel_phase.cc.o.d"
  "/root/repo/src/isa/trace.cc" "src/isa/CMakeFiles/mapp_isa.dir/trace.cc.o" "gcc" "src/isa/CMakeFiles/mapp_isa.dir/trace.cc.o.d"
  "/root/repo/src/isa/trace_io.cc" "src/isa/CMakeFiles/mapp_isa.dir/trace_io.cc.o" "gcc" "src/isa/CMakeFiles/mapp_isa.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/mapp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
