# Empty dependencies file for mapp_obs.
# This may be replaced when dependencies are built.
