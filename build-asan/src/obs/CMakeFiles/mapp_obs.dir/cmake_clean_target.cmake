file(REMOVE_RECURSE
  "libmapp_obs.a"
)
