file(REMOVE_RECURSE
  "CMakeFiles/mapp_obs.dir/metrics.cc.o"
  "CMakeFiles/mapp_obs.dir/metrics.cc.o.d"
  "CMakeFiles/mapp_obs.dir/timer.cc.o"
  "CMakeFiles/mapp_obs.dir/timer.cc.o.d"
  "CMakeFiles/mapp_obs.dir/trace.cc.o"
  "CMakeFiles/mapp_obs.dir/trace.cc.o.d"
  "libmapp_obs.a"
  "libmapp_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
