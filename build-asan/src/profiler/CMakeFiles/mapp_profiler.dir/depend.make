# Empty dependencies file for mapp_profiler.
# This may be replaced when dependencies are built.
