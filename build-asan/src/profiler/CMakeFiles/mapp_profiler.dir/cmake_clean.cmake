file(REMOVE_RECURSE
  "CMakeFiles/mapp_profiler.dir/mica.cc.o"
  "CMakeFiles/mapp_profiler.dir/mica.cc.o.d"
  "CMakeFiles/mapp_profiler.dir/op_profiler.cc.o"
  "CMakeFiles/mapp_profiler.dir/op_profiler.cc.o.d"
  "libmapp_profiler.a"
  "libmapp_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
