
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/mica.cc" "src/profiler/CMakeFiles/mapp_profiler.dir/mica.cc.o" "gcc" "src/profiler/CMakeFiles/mapp_profiler.dir/mica.cc.o.d"
  "/root/repo/src/profiler/op_profiler.cc" "src/profiler/CMakeFiles/mapp_profiler.dir/op_profiler.cc.o" "gcc" "src/profiler/CMakeFiles/mapp_profiler.dir/op_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/isa/CMakeFiles/mapp_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/mapp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
