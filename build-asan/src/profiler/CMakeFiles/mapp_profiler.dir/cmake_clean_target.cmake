file(REMOVE_RECURSE
  "libmapp_profiler.a"
)
