# Empty dependencies file for mapp_predictor.
# This may be replaced when dependencies are built.
