file(REMOVE_RECURSE
  "libmapp_predictor.a"
)
