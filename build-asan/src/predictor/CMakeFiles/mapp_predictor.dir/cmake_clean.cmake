file(REMOVE_RECURSE
  "CMakeFiles/mapp_predictor.dir/data_collection.cc.o"
  "CMakeFiles/mapp_predictor.dir/data_collection.cc.o.d"
  "CMakeFiles/mapp_predictor.dir/decision_analysis.cc.o"
  "CMakeFiles/mapp_predictor.dir/decision_analysis.cc.o.d"
  "CMakeFiles/mapp_predictor.dir/fairness.cc.o"
  "CMakeFiles/mapp_predictor.dir/fairness.cc.o.d"
  "CMakeFiles/mapp_predictor.dir/features.cc.o"
  "CMakeFiles/mapp_predictor.dir/features.cc.o.d"
  "CMakeFiles/mapp_predictor.dir/kbag.cc.o"
  "CMakeFiles/mapp_predictor.dir/kbag.cc.o.d"
  "CMakeFiles/mapp_predictor.dir/predictor.cc.o"
  "CMakeFiles/mapp_predictor.dir/predictor.cc.o.d"
  "CMakeFiles/mapp_predictor.dir/scheduler.cc.o"
  "CMakeFiles/mapp_predictor.dir/scheduler.cc.o.d"
  "CMakeFiles/mapp_predictor.dir/schemes.cc.o"
  "CMakeFiles/mapp_predictor.dir/schemes.cc.o.d"
  "libmapp_predictor.a"
  "libmapp_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
