file(REMOVE_RECURSE
  "CMakeFiles/mapp_vision.dir/facedet.cc.o"
  "CMakeFiles/mapp_vision.dir/facedet.cc.o.d"
  "CMakeFiles/mapp_vision.dir/fast.cc.o"
  "CMakeFiles/mapp_vision.dir/fast.cc.o.d"
  "CMakeFiles/mapp_vision.dir/hog.cc.o"
  "CMakeFiles/mapp_vision.dir/hog.cc.o.d"
  "CMakeFiles/mapp_vision.dir/image.cc.o"
  "CMakeFiles/mapp_vision.dir/image.cc.o.d"
  "CMakeFiles/mapp_vision.dir/knn.cc.o"
  "CMakeFiles/mapp_vision.dir/knn.cc.o.d"
  "CMakeFiles/mapp_vision.dir/objrec.cc.o"
  "CMakeFiles/mapp_vision.dir/objrec.cc.o.d"
  "CMakeFiles/mapp_vision.dir/ops.cc.o"
  "CMakeFiles/mapp_vision.dir/ops.cc.o.d"
  "CMakeFiles/mapp_vision.dir/orb.cc.o"
  "CMakeFiles/mapp_vision.dir/orb.cc.o.d"
  "CMakeFiles/mapp_vision.dir/registry.cc.o"
  "CMakeFiles/mapp_vision.dir/registry.cc.o.d"
  "CMakeFiles/mapp_vision.dir/sift.cc.o"
  "CMakeFiles/mapp_vision.dir/sift.cc.o.d"
  "CMakeFiles/mapp_vision.dir/surf.cc.o"
  "CMakeFiles/mapp_vision.dir/surf.cc.o.d"
  "CMakeFiles/mapp_vision.dir/svm.cc.o"
  "CMakeFiles/mapp_vision.dir/svm.cc.o.d"
  "libmapp_vision.a"
  "libmapp_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
