# Empty dependencies file for mapp_vision.
# This may be replaced when dependencies are built.
