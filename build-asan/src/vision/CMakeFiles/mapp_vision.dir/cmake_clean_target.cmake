file(REMOVE_RECURSE
  "libmapp_vision.a"
)
