
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/facedet.cc" "src/vision/CMakeFiles/mapp_vision.dir/facedet.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/facedet.cc.o.d"
  "/root/repo/src/vision/fast.cc" "src/vision/CMakeFiles/mapp_vision.dir/fast.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/fast.cc.o.d"
  "/root/repo/src/vision/hog.cc" "src/vision/CMakeFiles/mapp_vision.dir/hog.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/hog.cc.o.d"
  "/root/repo/src/vision/image.cc" "src/vision/CMakeFiles/mapp_vision.dir/image.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/image.cc.o.d"
  "/root/repo/src/vision/knn.cc" "src/vision/CMakeFiles/mapp_vision.dir/knn.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/knn.cc.o.d"
  "/root/repo/src/vision/objrec.cc" "src/vision/CMakeFiles/mapp_vision.dir/objrec.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/objrec.cc.o.d"
  "/root/repo/src/vision/ops.cc" "src/vision/CMakeFiles/mapp_vision.dir/ops.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/ops.cc.o.d"
  "/root/repo/src/vision/orb.cc" "src/vision/CMakeFiles/mapp_vision.dir/orb.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/orb.cc.o.d"
  "/root/repo/src/vision/registry.cc" "src/vision/CMakeFiles/mapp_vision.dir/registry.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/registry.cc.o.d"
  "/root/repo/src/vision/sift.cc" "src/vision/CMakeFiles/mapp_vision.dir/sift.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/sift.cc.o.d"
  "/root/repo/src/vision/surf.cc" "src/vision/CMakeFiles/mapp_vision.dir/surf.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/surf.cc.o.d"
  "/root/repo/src/vision/svm.cc" "src/vision/CMakeFiles/mapp_vision.dir/svm.cc.o" "gcc" "src/vision/CMakeFiles/mapp_vision.dir/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/profiler/CMakeFiles/mapp_profiler.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/mapp_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/mapp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
