file(REMOVE_RECURSE
  "libmapp_cpusim.a"
)
