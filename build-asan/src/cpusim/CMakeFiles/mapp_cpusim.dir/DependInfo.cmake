
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpusim/cache_model.cc" "src/cpusim/CMakeFiles/mapp_cpusim.dir/cache_model.cc.o" "gcc" "src/cpusim/CMakeFiles/mapp_cpusim.dir/cache_model.cc.o.d"
  "/root/repo/src/cpusim/core_model.cc" "src/cpusim/CMakeFiles/mapp_cpusim.dir/core_model.cc.o" "gcc" "src/cpusim/CMakeFiles/mapp_cpusim.dir/core_model.cc.o.d"
  "/root/repo/src/cpusim/memory_model.cc" "src/cpusim/CMakeFiles/mapp_cpusim.dir/memory_model.cc.o" "gcc" "src/cpusim/CMakeFiles/mapp_cpusim.dir/memory_model.cc.o.d"
  "/root/repo/src/cpusim/multicore_sim.cc" "src/cpusim/CMakeFiles/mapp_cpusim.dir/multicore_sim.cc.o" "gcc" "src/cpusim/CMakeFiles/mapp_cpusim.dir/multicore_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/isa/CMakeFiles/mapp_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/mapp_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/mapp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
