file(REMOVE_RECURSE
  "CMakeFiles/mapp_cpusim.dir/cache_model.cc.o"
  "CMakeFiles/mapp_cpusim.dir/cache_model.cc.o.d"
  "CMakeFiles/mapp_cpusim.dir/core_model.cc.o"
  "CMakeFiles/mapp_cpusim.dir/core_model.cc.o.d"
  "CMakeFiles/mapp_cpusim.dir/memory_model.cc.o"
  "CMakeFiles/mapp_cpusim.dir/memory_model.cc.o.d"
  "CMakeFiles/mapp_cpusim.dir/multicore_sim.cc.o"
  "CMakeFiles/mapp_cpusim.dir/multicore_sim.cc.o.d"
  "libmapp_cpusim.a"
  "libmapp_cpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_cpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
