# Empty dependencies file for mapp_cpusim.
# This may be replaced when dependencies are built.
