file(REMOVE_RECURSE
  "libmapp_gpusim.a"
)
