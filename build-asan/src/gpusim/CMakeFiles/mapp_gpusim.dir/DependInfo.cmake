
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/l2_model.cc" "src/gpusim/CMakeFiles/mapp_gpusim.dir/l2_model.cc.o" "gcc" "src/gpusim/CMakeFiles/mapp_gpusim.dir/l2_model.cc.o.d"
  "/root/repo/src/gpusim/mps_sim.cc" "src/gpusim/CMakeFiles/mapp_gpusim.dir/mps_sim.cc.o" "gcc" "src/gpusim/CMakeFiles/mapp_gpusim.dir/mps_sim.cc.o.d"
  "/root/repo/src/gpusim/sm_model.cc" "src/gpusim/CMakeFiles/mapp_gpusim.dir/sm_model.cc.o" "gcc" "src/gpusim/CMakeFiles/mapp_gpusim.dir/sm_model.cc.o.d"
  "/root/repo/src/gpusim/tlb_model.cc" "src/gpusim/CMakeFiles/mapp_gpusim.dir/tlb_model.cc.o" "gcc" "src/gpusim/CMakeFiles/mapp_gpusim.dir/tlb_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/isa/CMakeFiles/mapp_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/mapp_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/mapp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
