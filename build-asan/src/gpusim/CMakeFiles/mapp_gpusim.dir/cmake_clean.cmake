file(REMOVE_RECURSE
  "CMakeFiles/mapp_gpusim.dir/l2_model.cc.o"
  "CMakeFiles/mapp_gpusim.dir/l2_model.cc.o.d"
  "CMakeFiles/mapp_gpusim.dir/mps_sim.cc.o"
  "CMakeFiles/mapp_gpusim.dir/mps_sim.cc.o.d"
  "CMakeFiles/mapp_gpusim.dir/sm_model.cc.o"
  "CMakeFiles/mapp_gpusim.dir/sm_model.cc.o.d"
  "CMakeFiles/mapp_gpusim.dir/tlb_model.cc.o"
  "CMakeFiles/mapp_gpusim.dir/tlb_model.cc.o.d"
  "libmapp_gpusim.a"
  "libmapp_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
