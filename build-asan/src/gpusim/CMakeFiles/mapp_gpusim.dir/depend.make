# Empty dependencies file for mapp_gpusim.
# This may be replaced when dependencies are built.
