# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("isa")
subdirs("profiler")
subdirs("vision")
subdirs("cpusim")
subdirs("gpusim")
subdirs("ml")
subdirs("predictor")
