file(REMOVE_RECURSE
  "libmapp_common.a"
)
