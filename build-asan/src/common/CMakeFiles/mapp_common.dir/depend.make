# Empty dependencies file for mapp_common.
# This may be replaced when dependencies are built.
