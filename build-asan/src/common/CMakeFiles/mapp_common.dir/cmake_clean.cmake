file(REMOVE_RECURSE
  "CMakeFiles/mapp_common.dir/csv.cc.o"
  "CMakeFiles/mapp_common.dir/csv.cc.o.d"
  "CMakeFiles/mapp_common.dir/log.cc.o"
  "CMakeFiles/mapp_common.dir/log.cc.o.d"
  "CMakeFiles/mapp_common.dir/matrix.cc.o"
  "CMakeFiles/mapp_common.dir/matrix.cc.o.d"
  "CMakeFiles/mapp_common.dir/rng.cc.o"
  "CMakeFiles/mapp_common.dir/rng.cc.o.d"
  "CMakeFiles/mapp_common.dir/sharing.cc.o"
  "CMakeFiles/mapp_common.dir/sharing.cc.o.d"
  "CMakeFiles/mapp_common.dir/stats.cc.o"
  "CMakeFiles/mapp_common.dir/stats.cc.o.d"
  "CMakeFiles/mapp_common.dir/table.cc.o"
  "CMakeFiles/mapp_common.dir/table.cc.o.d"
  "libmapp_common.a"
  "libmapp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
